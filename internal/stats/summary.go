package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks. It does not modify xs.
// An empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesSorted returns the percentiles ps of xs, which must already
// be sorted ascending. It is the allocation-free path for callers that
// need several percentiles of the same data.
func PercentilesSorted(sorted []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts values into the given bin boundaries. Counts[i] holds
// the number of values in [Bounds[i], Bounds[i+1]); values below
// Bounds[0] or at/above Bounds[len-1] fall in Under/Over.
type Histogram struct {
	Bounds []float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram builds a histogram over the given ascending boundaries.
// It panics if fewer than two boundaries are given or they are not
// strictly increasing.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) < 2 {
		panic("stats: NewHistogram needs at least two boundaries")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewHistogram boundaries must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int, len(bounds)-1)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	if x < h.Bounds[0] {
		h.Under++
		return
	}
	if x >= h.Bounds[len(h.Bounds)-1] {
		h.Over++
		return
	}
	// Binary search for the bin.
	i := sort.SearchFloat64s(h.Bounds, x)
	if i < len(h.Bounds) && h.Bounds[i] == x {
		// x is exactly a boundary: it belongs to the bin starting at i.
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Total returns the number of recorded values, including under/overflow.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fraction returns Counts[i] as a fraction of Total, or 0 if empty.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(t)
}
