package stats

import (
	"math"
	"testing"
)

func TestGammaMoments(t *testing.T) {
	r := NewRNG(11, 0)
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {4.2, 120}, {9, 0.5},
	} {
		const n = 200000
		var sum, ss float64
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v < 0 {
				t.Fatalf("negative gamma variate %v", v)
			}
			sum += v
			ss += v * v
		}
		mean := sum / n
		wantMean := c.shape * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Errorf("Gamma(%v,%v): mean %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		variance := ss/n - mean*mean
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("Gamma(%v,%v): var %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	r := NewRNG(1, 0)
	for _, c := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v, %v) did not panic", c[0], c[1])
				}
			}()
			r.Gamma(c[0], c[1])
		}()
	}
}

func TestHyperGamma(t *testing.T) {
	r := NewRNG(13, 0)
	h := HyperGamma{P: 0.7, Shape1: 2, Scale1: 10, Shape2: 5, Scale2: 100}
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += h.Sample(r)
	}
	mean := sum / n
	want := h.Mean() // 0.7*20 + 0.3*500 = 164
	if math.Abs(mean-want) > 0.03*want {
		t.Errorf("hyper-gamma mean %v, want %v", mean, want)
	}
	if math.Abs(h.Mean()-164) > 1e-9 {
		t.Errorf("analytic mean %v, want 164", h.Mean())
	}
}

func TestNorm(t *testing.T) {
	r := NewRNG(17, 0)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		ss += v * v
	}
	if m := sum / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean %v", m)
	}
	if v := ss / n; math.Abs(v-1) > 0.03 {
		t.Errorf("normal variance %v", v)
	}
}
