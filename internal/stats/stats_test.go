package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 3)
	b := NewRNG(42, 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, stream) produced different values")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(42, 0)
	b := NewRNG(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams 0 and 1 coincide on %d of 100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(1, 0)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestLogUniform(t *testing.T) {
	r := NewRNG(1, 0)
	lo, hi := 2.0, 512.0
	n := 20000
	below16 := 0
	for i := 0; i < n; i++ {
		v := r.LogUniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("LogUniform out of range: %v", v)
		}
		if v < 32 {
			below16++
		}
	}
	// log-uniform: P(v < 32) = log(32/2)/log(512/2) = 4/8 = 0.5.
	frac := float64(below16) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("P(v<32) = %.3f, want ~0.5", frac)
	}
	if got := r.LogUniform(7, 7); got != 7 {
		t.Errorf("degenerate LogUniform = %v", got)
	}
}

func TestLogUniformPanics(t *testing.T) {
	r := NewRNG(1, 0)
	for _, c := range [][2]float64{{0, 1}, {-1, 1}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogUniform(%v, %v) did not panic", c[0], c[1])
				}
			}()
			r.LogUniform(c[0], c[1])
		}()
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	r := NewRNG(9, 0)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 40000
	for i := 0; i < n; i++ {
		counts[r.Choose(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / float64(n)
	if frac0 < 0.22 || frac0 > 0.28 {
		t.Errorf("bucket 0 frequency %.3f, want ~0.25", frac0)
	}
}

func TestChooseDegenerate(t *testing.T) {
	r := NewRNG(9, 0)
	if got := r.Choose([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights chose %d, want 0", got)
	}
	if got := r.Choose([]float64{-1, 2}); got != 1 {
		t.Errorf("negative weight treated as positive: chose %d", got)
	}
}

func TestTruncExpMeanMatchesSamples(t *testing.T) {
	r := NewRNG(3, 0)
	for _, c := range []struct{ lo, hi, mean float64 }{
		{0, 3600, 300},
		{3600, 18000, 9000},
		{18000, 43200, 40000},
		{0, 100, 50},
	} {
		d, err := SolveTruncExp(c.lo, c.hi, c.mean)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Mean(); math.Abs(got-c.mean) > 1e-6*(c.hi-c.lo)+1e-9 {
			t.Errorf("analytic mean %v, want %v", got, c.mean)
		}
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			if v < c.lo || v > c.hi {
				t.Fatalf("sample %v outside [%v, %v]", v, c.lo, c.hi)
			}
			sum += v
		}
		emp := sum / n
		if math.Abs(emp-c.mean) > 0.02*(c.hi-c.lo) {
			t.Errorf("empirical mean %v, want %v (lo %v hi %v)", emp, c.mean, c.lo, c.hi)
		}
	}
}

func TestSolveTruncExpClampsUnreachableMeans(t *testing.T) {
	d, err := SolveTruncExp(0, 100, 1000) // mean above the interval
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() < 90 || d.Mean() > 100 {
		t.Errorf("clamped mean %v, want near 100", d.Mean())
	}
	d, err = SolveTruncExp(0, 100, -50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() < 0 || d.Mean() > 10 {
		t.Errorf("clamped mean %v, want near 0", d.Mean())
	}
}

func TestSolveTruncExpDegenerate(t *testing.T) {
	if _, err := SolveTruncExp(10, 5, 7); err == nil {
		t.Error("hi < lo accepted")
	}
	d, err := SolveTruncExp(5, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 5 {
		t.Errorf("point distribution mean %v", d.Mean())
	}
	r := NewRNG(1, 0)
	if got := d.Sample(r); got != 5 {
		t.Errorf("point distribution sample %v", got)
	}
}

func TestSolveTruncExpProperty(t *testing.T) {
	// For any feasible target, the solved distribution's analytic mean
	// hits the target within tolerance.
	prop := func(seed uint16) bool {
		r := NewRNG(uint64(seed), 0)
		lo := r.Uniform(0, 1000)
		hi := lo + r.Uniform(1, 10000)
		mean := r.Uniform(lo+0.05*(hi-lo), hi-0.05*(hi-lo))
		d, err := SolveTruncExp(lo, hi, mean)
		if err != nil {
			return false
		}
		return math.Abs(d.Mean()-mean) < 1e-6*(hi-lo)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {98, 49.2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	prop := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return Percentile(raw, p1) <= Percentile(raw, p2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 20, 30)
	for _, v := range []float64{-5, 0, 5, 10, 15, 25, 30, 100} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1 (-5)", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (30, 100)", h.Over)
	}
	if h.Counts[0] != 2 { // 0, 5
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 10, 15
		t.Errorf("Counts[1] = %d, want 2", h.Counts[1])
	}
	if h.Counts[2] != 1 { // 25
		t.Errorf("Counts[2] = %d, want 1", h.Counts[2])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.Fraction(0); got != 0.25 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}
