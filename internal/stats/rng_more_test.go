package stats

import (
	"math"
	"testing"
)

func TestIntN(t *testing.T) {
	r := NewRNG(1, 0)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		v := r.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("IntN bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestExp(t *testing.T) {
	r := NewRNG(2, 0)
	const mean = 250.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-mean) > 0.02*mean {
		t.Errorf("empirical mean %v, want %v", got, mean)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(3, 0)
	p := r.Perm(10)
	if len(p) != 10 {
		t.Fatalf("Perm length %d", len(p))
	}
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(4, 0)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	r.Shuffle(len(xs), func(i, k int) { xs[i], xs[k] = xs[k], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5, 0)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency %v", frac)
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Nearby inputs must produce far-apart outputs.
	a := splitmix64(1)
	b := splitmix64(2)
	diff := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Errorf("splitmix64(1) and splitmix64(2) differ in only %d bits", diff)
	}
}

func TestPercentilesSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	got := PercentilesSorted(sorted, 0, 50, 100)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PercentilesSorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
