package stats

import "math"

// Gamma draws a gamma-distributed variate with the given shape and
// scale (mean = shape*scale), using the Marsaglia-Tsang squeeze method
// (2000) with Ahrens-Dieter boosting for shape < 1. Needed by the
// Lublin-Feitelson workload model, whose runtimes are hyper-gamma.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Norm returns a standard normal variate.
func (r *RNG) Norm() float64 { return r.src.NormFloat64() }

// HyperGamma is a two-component gamma mixture: with probability P the
// variate comes from Gamma(Shape1, Scale1), otherwise from
// Gamma(Shape2, Scale2).
type HyperGamma struct {
	P              float64
	Shape1, Scale1 float64
	Shape2, Scale2 float64
}

// Sample draws one variate.
func (h HyperGamma) Sample(r *RNG) float64 {
	if r.Float64() < h.P {
		return r.Gamma(h.Shape1, h.Scale1)
	}
	return r.Gamma(h.Shape2, h.Scale2)
}

// Mean returns the analytic mean of the mixture.
func (h HyperGamma) Mean() float64 {
	return h.P*h.Shape1*h.Scale1 + (1-h.P)*h.Shape2*h.Scale2
}
