// Package stats provides the statistical substrate used by the workload
// generator and the experiment harness: deterministic seeded random
// streams, the distributions needed to synthesize job traces (log-uniform,
// mean-targeted truncated exponential), descriptive statistics
// (mean, percentiles, histograms) and small numeric solvers.
//
// Everything in this package is deterministic given a seed, so every
// experiment in the repository is exactly reproducible.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream. It wraps the stdlib PCG source so
// that independent substreams can be derived for separate purposes
// (arrivals, sizes, runtimes, ...) without cross-contamination: drawing
// more values for one purpose must not perturb another purpose's stream.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic stream seeded with (seed, stream).
// Distinct stream numbers derived from the same seed are statistically
// independent.
func NewRNG(seed, stream uint64) *RNG {
	// Mix the pair through SplitMix64 so that nearby (seed, stream)
	// pairs land far apart in PCG state space.
	s1 := splitmix64(seed ^ 0x9e3779b97f4a7c15)
	s2 := splitmix64(seed + 0x6a09e667f3bcc909*(stream+1))
	return &RNG{src: rand.New(rand.NewPCG(s1, s2))}
}

// splitmix64 is the standard SplitMix64 finalizer, used only for seeding.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// LogUniform returns a variate whose logarithm is uniform on
// [log lo, log hi]. It panics if lo <= 0 or hi < lo.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("stats: LogUniform requires 0 < lo <= hi")
	}
	if lo == hi {
		return lo
	}
	return lo * math.Exp(r.src.Float64()*math.Log(hi/lo))
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Choose returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. Negative weights are treated as zero. If
// all weights are zero it returns 0.
func (r *RNG) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
