package stats

import (
	"fmt"
	"math"
)

// TruncExp is an exponential distribution truncated to the interval
// [Lo, Hi] with rate parameter Lambda. Lambda may be negative (density
// increasing toward Hi), positive (density decreasing from Lo), or zero
// (uniform on [Lo, Hi]). The family is exactly the maximum-entropy
// distribution on an interval with a prescribed mean, which is what the
// workload calibrator needs: Table 3 of the paper pins the mean runtime
// of each job class, Table 4 pins the class boundaries.
type TruncExp struct {
	Lo, Hi float64
	Lambda float64
}

// Mean returns the analytic mean of the distribution.
func (d TruncExp) Mean() float64 {
	w := d.Hi - d.Lo
	if w <= 0 {
		return d.Lo
	}
	lw := d.Lambda * w
	if math.Abs(lw) < 1e-9 {
		// Uniform limit, with the first-order correction so the
		// bisection solver sees a smooth monotone function through
		// lambda = 0.
		return d.Lo + w*(0.5-lw/12)
	}
	// Mean of Exp(lambda) truncated to [0, w], shifted by Lo:
	//   1/lambda - w/(exp(lambda*w) - 1)
	return d.Lo + 1/d.Lambda - w/math.Expm1(lw)
}

// Sample draws a variate via inverse-transform sampling.
func (d TruncExp) Sample(r *RNG) float64 {
	w := d.Hi - d.Lo
	if w <= 0 {
		return d.Lo
	}
	u := r.Float64()
	lw := d.Lambda * w
	if math.Abs(lw) < 1e-9 {
		return d.Lo + u*w
	}
	// CDF on [0,w]: F(x) = (1 - exp(-lambda x)) / (1 - exp(-lambda w))
	x := -math.Log1p(u*math.Expm1(-lw)) / d.Lambda
	if x < 0 {
		x = 0
	}
	if x > w {
		x = w
	}
	return d.Lo + x
}

// SolveTruncExp returns a TruncExp on [lo, hi] whose mean equals the
// target, solved by bisection on lambda. The target is clamped into the
// open interval (lo, hi); the achievable mean range is effectively
// (lo, hi) for |lambda| <= maxLambda.
func SolveTruncExp(lo, hi, mean float64) (TruncExp, error) {
	if hi < lo {
		return TruncExp{}, fmt.Errorf("stats: SolveTruncExp: hi %v < lo %v", hi, lo)
	}
	if hi == lo {
		return TruncExp{Lo: lo, Hi: hi}, nil
	}
	w := hi - lo
	// Keep lambda bounded so sampling stays numerically safe. At
	// |lambda*w| = 50 the mean is within ~2% of the interval edge,
	// plenty for calibration.
	const maxLW = 50.0
	lam := func(lw float64) TruncExp { return TruncExp{Lo: lo, Hi: hi, Lambda: lw / w} }
	clamp := func(x, a, b float64) float64 { return math.Max(a, math.Min(b, x)) }
	mean = clamp(mean, lam(maxLW).Mean(), lam(-maxLW).Mean())

	// Mean is strictly decreasing in lambda.
	loLW, hiLW := -maxLW, maxLW // mean(loLW) is the max, mean(hiLW) the min
	for i := 0; i < 100; i++ {
		mid := (loLW + hiLW) / 2
		if lam(mid).Mean() > mean {
			loLW = mid
		} else {
			hiLW = mid
		}
	}
	return lam((loLW + hiLW) / 2), nil
}
