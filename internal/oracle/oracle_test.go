package oracle_test

import (
	"errors"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func invariant(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("violation of %q not detected", want)
	}
	var v *oracle.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *Violation", err)
	}
	if v.Invariant != want {
		t.Fatalf("flagged %q (%v), want %q", v.Invariant, err, want)
	}
}

// TestCleanRunPasses attaches the oracle to a real simulated month and
// requires a clean bill of health, live and on the record sweep.
func TestCleanRunPasses(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 5, JobScale: 0.03})
	in, _, err := suite.Input("7/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.New(in.Capacity)
	in.Observer = orc
	res, err := sim.Run(in, policy.LXFBackfill())
	if err != nil {
		t.Fatal(err)
	}
	if err := orc.Final(); err != nil {
		t.Fatalf("live oracle on a clean run: %v", err)
	}
	if n := len(orc.Violations()); n != 0 {
		t.Fatalf("%d violations on a clean run", n)
	}
	if err := oracle.CheckRecords(in.Capacity, in.Jobs, res.Records); err != nil {
		t.Fatalf("record sweep on a clean run: %v", err)
	}
}

func mk(id int, submit job.Time, nodes int, rt job.Duration) job.Job {
	return job.Job{ID: id, Submit: submit, Nodes: nodes, Runtime: rt, Request: rt}
}

// TestLiveViolations feeds the live oracle hand-corrupted event streams
// and requires each invariant to be flagged with its tag.
func TestLiveViolations(t *testing.T) {
	start := func(o *oracle.Oracle, now job.Time, j job.Job, nodes []int) {
		o.ObserveStart(now, sim.Started{Job: j, Start: now, NodeIDs: nodes})
	}
	finish := func(o *oracle.Oracle, j job.Job, s, e job.Time, nodes []int) {
		o.ObserveFinish(sim.Finished{Job: j, Start: s, End: e, NodeIDs: nodes})
	}
	cases := []struct {
		name, want string
		drive      func(o *oracle.Oracle) error
	}{
		{"node-shared", "oversubscription", func(o *oracle.Oracle) error {
			a, b := mk(1, 0, 1, 10), mk(2, 0, 1, 10)
			o.ObserveSubmit(a)
			o.ObserveSubmit(b)
			start(o, 0, a, []int{0})
			start(o, 0, b, []int{0}) // same node
			return o.Err()
		}},
		{"node-out-of-range", "oversubscription", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 10)
			o.ObserveSubmit(a)
			start(o, 0, a, []int{4})
			return o.Err()
		}},
		{"wrong-allocation-width", "oversubscription", func(o *oracle.Oracle) error {
			a := mk(1, 0, 2, 10)
			o.ObserveSubmit(a)
			start(o, 0, a, []int{0})
			return o.Err()
		}},
		{"preempted", "preemption", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 100)
			o.ObserveSubmit(a)
			start(o, 0, a, []int{0})
			finish(o, a, 0, 50, []int{0}) // ended early: was split/killed
			return o.Err()
		}},
		{"restarted", "preemption", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 100)
			o.ObserveSubmit(a)
			start(o, 0, a, []int{0})
			finish(o, a, 20, 120, []int{0}) // completion claims a later start
			return o.Err()
		}},
		{"time-travel-start", "start-before-arrival", func(o *oracle.Oracle) error {
			a := mk(1, 500, 1, 10)
			o.ObserveSubmit(a)
			start(o, 100, a, []int{0})
			return o.Err()
		}},
		{"admitted-twice", "conservation", func(o *oracle.Oracle) error {
			o.ObserveSubmit(mk(1, 0, 1, 10))
			o.ObserveSubmit(mk(1, 5, 1, 10))
			return o.Err()
		}},
		{"started-twice", "conservation", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 10)
			o.ObserveSubmit(a)
			start(o, 0, a, []int{0})
			start(o, 5, a, []int{1})
			return o.Err()
		}},
		{"phantom-start", "conservation", func(o *oracle.Oracle) error {
			start(o, 0, mk(9, 0, 1, 10), []int{0})
			return o.Err()
		}},
		{"completed-without-starting", "conservation", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 10)
			o.ObserveSubmit(a)
			finish(o, a, 0, 10, []int{0})
			return o.Err()
		}},
		{"lost-job", "conservation", func(o *oracle.Oracle) error {
			o.ObserveSubmit(mk(1, 0, 1, 10))
			return o.Final()
		}},
		{"submit-order", "monotonicity", func(o *oracle.Oracle) error {
			o.ObserveSubmit(mk(1, 100, 1, 10))
			o.ObserveSubmit(mk(2, 50, 1, 10))
			return o.Err()
		}},
		{"decision-order", "monotonicity", func(o *oracle.Oracle) error {
			a, b := mk(1, 0, 1, 1000), mk(2, 0, 1, 10)
			o.ObserveSubmit(a)
			o.ObserveSubmit(b)
			start(o, 100, a, []int{0})
			start(o, 50, b, []int{1})
			return o.Err()
		}},
		{"deferred-dispatch", "monotonicity", func(o *oracle.Oracle) error {
			a := mk(1, 0, 1, 10)
			o.ObserveSubmit(a)
			o.ObserveStart(50, sim.Started{Job: a, Start: 60, NodeIDs: []int{0}})
			return o.Err()
		}},
		{"invalid-admission", "malformed", func(o *oracle.Oracle) error {
			o.ObserveSubmit(mk(1, 0, 99, 10))
			return o.Err()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			invariant(t, tc.drive(oracle.New(4)), tc.want)
		})
	}
}

// TestCheckRecords corrupts a well-formed record stream one field at a
// time; each corruption must be flagged with the right invariant.
func TestCheckRecords(t *testing.T) {
	submitted := []job.Job{mk(1, 0, 2, 100), mk(2, 10, 3, 50), mk(3, 20, 2, 200)}
	clean := []sim.Record{
		{Job: submitted[1], Start: 10, End: 60, NodeIDs: []int{2, 3, 4}},
		{Job: submitted[0], Start: 0, End: 100, NodeIDs: []int{0, 1}},
		{Job: submitted[2], Start: 100, End: 300, NodeIDs: []int{0, 1}},
	}

	if err := oracle.CheckRecords(8, submitted, clean); err != nil {
		t.Fatalf("clean records rejected: %v", err)
	}
	if err := oracle.CheckRecords(8, nil, clean); err != nil {
		t.Fatalf("clean records without submissions rejected: %v", err)
	}

	corrupt := func(f func(rs []sim.Record) []sim.Record) []sim.Record {
		cp := make([]sim.Record, len(clean))
		for i, r := range clean {
			cp[i] = r
			cp[i].NodeIDs = append([]int(nil), r.NodeIDs...)
		}
		return f(cp)
	}
	cases := []struct {
		name, want string
		records    []sim.Record
	}{
		{"zero-capacity", "malformed", clean},
		{"dropped-job", "conservation", clean[:2]},
		{"duplicated-record", "conservation", corrupt(func(rs []sim.Record) []sim.Record {
			return append(rs, rs[1])
		})},
		{"phantom-job", "conservation", corrupt(func(rs []sim.Record) []sim.Record {
			return append(rs, sim.Record{Job: mk(7, 250, 1, 10), Start: 250, End: 260, NodeIDs: []int{5}})
		})},
		{"mutated-job", "conservation", corrupt(func(rs []sim.Record) []sim.Record {
			rs[1].Job.Runtime = 99
			rs[1].End = rs[1].Start + 99
			return rs
		})},
		{"early-start", "start-before-arrival", corrupt(func(rs []sim.Record) []sim.Record {
			rs[0].Start = 5
			rs[0].End = 55
			return rs
		})},
		{"preempted", "preemption", corrupt(func(rs []sim.Record) []sim.Record {
			rs[2].End = 250
			return rs
		})},
		{"order", "monotonicity", corrupt(func(rs []sim.Record) []sim.Record {
			rs[0], rs[1] = rs[1], rs[0]
			return rs
		})},
		{"node-shared", "oversubscription", corrupt(func(rs []sim.Record) []sim.Record {
			rs[0].NodeIDs = []int{0, 3, 4} // node 0 is job 1's while both run
			return rs
		})},
		{"node-duplicated", "oversubscription", corrupt(func(rs []sim.Record) []sim.Record {
			rs[0].NodeIDs = []int{2, 2, 3}
			return rs
		})},
		{"over-capacity", "oversubscription", corrupt(func(rs []sim.Record) []sim.Record {
			// Strip node IDs: the aggregate capacity sweep must still
			// catch 2+3 nodes on a 4-node machine.
			for i := range rs {
				rs[i].NodeIDs = nil
			}
			return rs
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			capacity := 8
			switch tc.name {
			case "zero-capacity":
				capacity = 0
			case "over-capacity":
				capacity = 4
			}
			invariant(t, oracle.CheckRecords(capacity, submitted, tc.records), tc.want)
		})
	}
}
