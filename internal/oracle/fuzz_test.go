package oracle_test

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
)

// decodeRun turns fuzz bytes into a (capacity, submissions, records)
// triple. The decoder is intentionally permissive: it produces invalid
// capacities, zero-node jobs, time-travelling starts, duplicated IDs
// and bogus allocations, because the oracle must flag all of that
// without ever panicking.
func decodeRun(data []byte) (int, []job.Job, []sim.Record) {
	if len(data) == 0 {
		return 0, nil, nil
	}
	capacity := int(data[0])%20 - 1 // [-1, 18]
	data = data[1:]
	var submitted []job.Job
	var records []sim.Record
	for len(data) >= 7 {
		b := data[:7]
		data = data[7:]
		j := job.Job{
			ID:      1 + int(b[0])%10,
			Submit:  job.Time(b[1]),
			Nodes:   int(b[2]) % 6, // 0 is invalid on purpose
			Runtime: job.Duration(b[3]) % 100,
		}
		j.Request = j.Runtime
		start := j.Submit + job.Time(int8(b[4])) // may precede arrival
		rt := j.Runtime
		if rt < 1 {
			rt = 1
		}
		end := start + rt + job.Time(int8(b[5])%10) // may break contiguity
		var nodes []int
		for n := 0; n < int(b[6])%5; n++ {
			nodes = append(nodes, int(b[6]>>2)+n*(int(b[6])%3)) // dups, out of range
		}
		submitted = append(submitted, j)
		records = append(records, sim.Record{Job: j, Start: start, End: end, NodeIDs: nodes})
	}
	return capacity, submitted, records
}

// FuzzOracleReplay hammers both oracle modes with arbitrary event
// streams: whatever the input, the oracle must return verdicts, never
// panic, and a stream it accepts end-to-end must be internally
// consistent enough to accept again.
func FuzzOracleReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 1, 0, 2, 50, 0, 0, 2})
	f.Add([]byte{5, 2, 10, 1, 30, 0, 0, 1, 3, 20, 2, 40, 0, 0, 2})
	f.Add([]byte{0, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		capacity, submitted, records := decodeRun(data)
		err := oracle.CheckRecords(capacity, submitted, records)
		_ = oracle.CheckRecords(capacity, nil, records)

		// Drive the live oracle with the same stream.
		o := oracle.New(capacity)
		for _, j := range submitted {
			o.ObserveSubmit(j)
		}
		for _, r := range records {
			o.ObserveStart(r.Start, sim.Started{Job: r.Job, Start: r.Start, NodeIDs: r.NodeIDs})
			o.ObserveFinish(sim.Finished{Job: r.Job, Start: r.Start, End: r.End, NodeIDs: r.NodeIDs})
		}
		_ = o.Final()
		_ = o.Violations()

		// Determinism: a replay-accepted stream must be accepted again.
		if err == nil {
			if err2 := oracle.CheckRecords(capacity, submitted, records); err2 != nil {
				t.Fatalf("verdict flipped on identical input: %v", err2)
			}
		}
	})
}
