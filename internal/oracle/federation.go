package oracle

import (
	"fmt"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// CheckFederation verifies the global invariants of a sharded
// (federated) run from its per-shard completion records:
//
//  1. Partition: the shard capacities sum to the machine size, so the
//     shards together model exactly the one machine.
//  2. Locality: every node ID a shard reports lies inside that shard's
//     own partition [0, cap_i) — a shard cannot schedule onto another
//     shard's nodes.
//  3. Everything CheckRecords enforces on the merged global schedule —
//     in particular job conservation across migrations (every submitted
//     job completes exactly once, on exactly one shard, regardless of
//     how often it migrated while queued) and no cross-shard node
//     oversubscription, checked on the global node space after mapping
//     each shard's local node IDs to machine node IDs.
//
// submitted may be nil to skip record-vs-submission matching, as in
// CheckRecords. shardRecords[i] is shard i's completion records in the
// shard's own (end time, job ID) order, with shard-local node IDs — the
// federation router's per-shard Records().
func CheckFederation(total int, shardCaps []int, submitted []job.Job, shardRecords [][]sim.Record) error {
	if len(shardCaps) != len(shardRecords) {
		return &Violation{Invariant: "malformed",
			Detail: fmt.Sprintf("%d shard capacities, %d shard record sets", len(shardCaps), len(shardRecords))}
	}
	sum := 0
	for i, c := range shardCaps {
		if c < 1 {
			return &Violation{Invariant: "partition", Detail: fmt.Sprintf("shard %d capacity %d", i, c)}
		}
		sum += c
	}
	if sum != total {
		return &Violation{Invariant: "partition",
			Detail: fmt.Sprintf("shard capacities sum to %d, machine size is %d", sum, total)}
	}

	var merged []sim.Record
	base := 0
	for si, recs := range shardRecords {
		for _, r := range recs {
			mapped := r
			if len(r.NodeIDs) > 0 {
				mapped.NodeIDs = make([]int, len(r.NodeIDs))
				for k, n := range r.NodeIDs {
					if n < 0 || n >= shardCaps[si] {
						return &Violation{Invariant: "oversubscription", JobID: r.Job.ID,
							Detail: fmt.Sprintf("shard %d allocated node %d outside its partition [0,%d)", si, n, shardCaps[si])}
					}
					mapped.NodeIDs[k] = base + n
				}
			}
			merged = append(merged, mapped)
		}
		base += shardCaps[si]
	}
	// CheckRecords wants global (end time, job ID) completion order;
	// each shard's stream is already ordered, the merge is not.
	sort.Slice(merged, func(i, k int) bool {
		if merged[i].End != merged[k].End {
			return merged[i].End < merged[k].End
		}
		return merged[i].Job.ID < merged[k].Job.ID
	})
	return CheckRecords(total, submitted, merged)
}
