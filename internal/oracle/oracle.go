// Package oracle is an independent schedule-invariant checker for the
// simulator and the online engine. It deliberately shares no
// bookkeeping with sim.Ledger: it maintains its own per-node busy map
// and job lifecycle table from the raw event stream, so a ledger bug
// cannot hide itself from the check.
//
// Two modes:
//
//   - Live: an Oracle implements sim.Observer and is attached through
//     sim.Input.Observer or engine.Config.Observer; every committed
//     event is validated as it happens, and Err/Final report the
//     verdict.
//   - Replay: CheckRecords sweeps a finished run's completion records
//     against the submitted jobs (what `schedsim`, `schedd -virtual`
//     and the golden-trace tests use).
//
// Invariants enforced (the non-preemptive space-sharing contract the
// paper's results depend on):
//
//  1. No node oversubscription: every node hosts at most one job at any
//     instant, node IDs are in [0, capacity), and a job holds exactly
//     Job.Nodes distinct nodes.
//  2. No preemption: a job runs contiguously from its single start to
//     its single end, End = Start + max(1, Runtime).
//  3. No start before arrival: Start >= Submit.
//  4. Job conservation: every admitted job starts at most once and
//     completes exactly once by the end of the run; no phantom jobs.
//  5. Monotone timestamps: submissions, decision (start) timestamps and
//     completions are each non-decreasing in commit order.
package oracle

import (
	"fmt"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Violation is one invariant breach.
type Violation struct {
	// Invariant is a short stable tag ("oversubscription",
	// "preemption", "start-before-arrival", "conservation",
	// "monotonicity", "malformed").
	Invariant string
	// JobID is the offending job, 0 if not job-specific.
	JobID int
	// Detail is the human-readable specifics.
	Detail string
}

func (v *Violation) Error() string {
	if v.JobID != 0 {
		return fmt.Sprintf("oracle: %s: job %d: %s", v.Invariant, v.JobID, v.Detail)
	}
	return fmt.Sprintf("oracle: %s: %s", v.Invariant, v.Detail)
}

// maxViolations bounds how many violations an Oracle accumulates, so a
// systematically broken run cannot consume unbounded memory.
const maxViolations = 64

// Oracle is the live checker; attach it via sim.Input.Observer or
// engine.Config.Observer. It is not goroutine-safe on its own — the
// drivers already serialize observer callbacks (see sim.Observer).
type Oracle struct {
	capacity int

	submitted map[int]job.Job // admitted jobs by ID
	started   map[int]started // currently running
	finished  map[int]bool    // completed
	nodeBusy  []int           // node ID -> job ID occupying it, 0 = free
	freeNodes int

	lastSubmit job.Time
	lastStart  job.Time
	lastFinish job.Time

	violations []*Violation
}

type started struct {
	at      job.Time
	nodeIDs []int
}

// New returns a live oracle for a machine of the given capacity.
func New(capacity int) *Oracle {
	return &Oracle{
		capacity:  capacity,
		submitted: make(map[int]job.Job),
		started:   make(map[int]started),
		finished:  make(map[int]bool),
		nodeBusy:  make([]int, max(capacity, 0)),
		freeNodes: capacity,
	}
}

func (o *Oracle) violate(invariant string, id int, format string, args ...any) {
	if len(o.violations) >= maxViolations {
		return
	}
	o.violations = append(o.violations, &Violation{
		Invariant: invariant,
		JobID:     id,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// ObserveSubmit implements sim.Observer.
func (o *Oracle) ObserveSubmit(j job.Job) {
	if _, dup := o.submitted[j.ID]; dup {
		o.violate("conservation", j.ID, "admitted twice")
		return
	}
	if j.Submit < o.lastSubmit {
		o.violate("monotonicity", j.ID, "submitted at t=%d after a submission at t=%d", j.Submit, o.lastSubmit)
	} else {
		o.lastSubmit = j.Submit
	}
	if err := j.Validate(o.capacity); err != nil {
		o.violate("malformed", j.ID, "admitted invalid job: %v", err)
	}
	o.submitted[j.ID] = j
}

// ObserveStart implements sim.Observer.
func (o *Oracle) ObserveStart(now job.Time, s sim.Started) {
	id := s.Job.ID
	if now < o.lastStart {
		o.violate("monotonicity", id, "decision at t=%d after a decision at t=%d", now, o.lastStart)
	} else {
		o.lastStart = now
	}
	if s.Start != now {
		o.violate("monotonicity", id, "dispatched for t=%d at decision time t=%d", s.Start, now)
	}
	j, known := o.submitted[id]
	switch {
	case !known:
		o.violate("conservation", id, "started but never admitted")
	case o.finished[id]:
		o.violate("conservation", id, "started after completing")
	case now < j.Submit:
		o.violate("start-before-arrival", id, "started at t=%d, submitted at t=%d", now, j.Submit)
	}
	if _, running := o.started[id]; running {
		o.violate("conservation", id, "started twice")
		return
	}
	want := s.Job.Nodes
	if known {
		want = j.Nodes
	}
	if len(s.NodeIDs) != want {
		o.violate("oversubscription", id, "allocated %d nodes for a %d-node job", len(s.NodeIDs), want)
	}
	for _, n := range s.NodeIDs {
		if n < 0 || n >= o.capacity {
			o.violate("oversubscription", id, "allocated node %d outside [0,%d)", n, o.capacity)
			continue
		}
		if holder := o.nodeBusy[n]; holder != 0 {
			o.violate("oversubscription", id, "allocated node %d already held by job %d", n, holder)
			continue
		}
		o.nodeBusy[n] = id
		o.freeNodes--
	}
	if o.freeNodes < 0 {
		o.violate("oversubscription", id, "machine oversubscribed: %d nodes over capacity %d", -o.freeNodes, o.capacity)
	}
	o.started[id] = started{at: s.Start, nodeIDs: append([]int(nil), s.NodeIDs...)}
}

// ObserveFinish implements sim.Observer.
func (o *Oracle) ObserveFinish(f sim.Finished) {
	id := f.Job.ID
	if f.End < o.lastFinish {
		o.violate("monotonicity", id, "completed at t=%d after a completion at t=%d", f.End, o.lastFinish)
	} else {
		o.lastFinish = f.End
	}
	st, running := o.started[id]
	if !running {
		if o.finished[id] {
			o.violate("conservation", id, "completed twice")
		} else {
			o.violate("conservation", id, "completed without starting")
		}
		return
	}
	if f.Start != st.at {
		o.violate("preemption", id, "completion reports start t=%d, dispatch was t=%d", f.Start, st.at)
	}
	rt := f.Job.Runtime
	if rt < 1 {
		rt = 1
	}
	if f.End != f.Start+rt {
		o.violate("preemption", id, "ran [%d,%d), runtime %d (job must run contiguously)", f.Start, f.End, f.Job.Runtime)
	}
	for _, n := range st.nodeIDs {
		if n >= 0 && n < o.capacity && o.nodeBusy[n] == id {
			o.nodeBusy[n] = 0
			o.freeNodes++
		}
	}
	delete(o.started, id)
	o.finished[id] = true
}

// ObserveWithdraw implements sim.WithdrawObserver: a federation
// migration removed a still-waiting job from this shard's queue. The
// job leaves the oracle's books entirely — it is re-admitted (and
// re-checked) wherever it lands. Withdrawing a job that is running,
// finished, or was never admitted is a violation.
func (o *Oracle) ObserveWithdraw(j job.Job) {
	id := j.ID
	switch {
	case o.finished[id]:
		o.violate("conservation", id, "withdrawn after completing")
	default:
		if _, running := o.started[id]; running {
			o.violate("preemption", id, "withdrawn while running")
			return
		}
		if _, known := o.submitted[id]; !known {
			o.violate("conservation", id, "withdrawn but never admitted")
			return
		}
		delete(o.submitted, id)
	}
}

// Err returns the first violation observed so far, or nil.
func (o *Oracle) Err() error {
	if len(o.violations) == 0 {
		return nil
	}
	return o.violations[0]
}

// Violations returns every violation observed so far (capped).
func (o *Oracle) Violations() []*Violation {
	return append([]*Violation(nil), o.violations...)
}

// Final checks end-of-run conservation on top of the live invariants:
// every admitted job must have completed (nothing waiting, nothing
// running). It returns the first violation, or nil.
func (o *Oracle) Final() error {
	if err := o.Err(); err != nil {
		return err
	}
	// Deterministic order for the error message.
	var pending []int
	for id := range o.submitted {
		if !o.finished[id] {
			pending = append(pending, id)
		}
	}
	if len(pending) > 0 {
		sort.Ints(pending)
		return &Violation{Invariant: "conservation", JobID: pending[0],
			Detail: fmt.Sprintf("admitted but never completed (%d jobs pending)", len(pending))}
	}
	return nil
}

// CheckRecords replays a finished run's completion records against the
// submitted jobs and checks every invariant a record stream can
// witness: conservation (exactly one record per submitted job, no
// phantoms), well-formed allocations, no start-before-arrival, no
// preemption, completion-order monotonicity, and — by sweeping start
// and end events — that no node is ever shared and total usage never
// exceeds capacity. submitted may be nil to skip the
// record-vs-submission matching (every job in records is then treated
// as admitted).
func CheckRecords(capacity int, submitted []job.Job, records []sim.Record) error {
	if capacity < 1 {
		return &Violation{Invariant: "malformed", Detail: fmt.Sprintf("capacity %d", capacity)}
	}
	byID := make(map[int]job.Job, len(submitted))
	for _, j := range submitted {
		if _, dup := byID[j.ID]; dup {
			return &Violation{Invariant: "conservation", JobID: j.ID, Detail: "submitted twice"}
		}
		byID[j.ID] = j
	}
	seen := make(map[int]bool, len(records))
	lastEnd := job.Time(-1 << 62)
	lastID := 0
	for _, r := range records {
		id := r.Job.ID
		if seen[id] {
			return &Violation{Invariant: "conservation", JobID: id, Detail: "completed twice"}
		}
		seen[id] = true
		if submitted != nil {
			sub, ok := byID[id]
			if !ok {
				return &Violation{Invariant: "conservation", JobID: id, Detail: "completed but never submitted"}
			}
			if sub.Nodes != r.Job.Nodes || sub.Submit != r.Job.Submit || sub.Runtime != r.Job.Runtime {
				return &Violation{Invariant: "conservation", JobID: id, Detail: "record job differs from submitted job"}
			}
		}
		if r.Job.Nodes < 1 || r.Job.Nodes > capacity {
			return &Violation{Invariant: "malformed", JobID: id, Detail: fmt.Sprintf("%d nodes on a %d-node machine", r.Job.Nodes, capacity)}
		}
		if r.Start < r.Job.Submit {
			return &Violation{Invariant: "start-before-arrival", JobID: id,
				Detail: fmt.Sprintf("started at t=%d, submitted at t=%d", r.Start, r.Job.Submit)}
		}
		rt := r.Job.Runtime
		if rt < 1 {
			rt = 1
		}
		if r.End != r.Start+rt {
			return &Violation{Invariant: "preemption", JobID: id,
				Detail: fmt.Sprintf("ran [%d,%d), runtime %d", r.Start, r.End, r.Job.Runtime)}
		}
		if r.End < lastEnd || (r.End == lastEnd && id < lastID) {
			return &Violation{Invariant: "monotonicity", JobID: id,
				Detail: fmt.Sprintf("completion record out of (time, ID) order after job %d", lastID)}
		}
		lastEnd, lastID = r.End, id
		if len(r.NodeIDs) > 0 {
			if len(r.NodeIDs) != r.Job.Nodes {
				return &Violation{Invariant: "oversubscription", JobID: id,
					Detail: fmt.Sprintf("allocated %d nodes for a %d-node job", len(r.NodeIDs), r.Job.Nodes)}
			}
			nodeSeen := make(map[int]bool, len(r.NodeIDs))
			for _, n := range r.NodeIDs {
				if n < 0 || n >= capacity {
					return &Violation{Invariant: "oversubscription", JobID: id,
						Detail: fmt.Sprintf("allocated node %d outside [0,%d)", n, capacity)}
				}
				if nodeSeen[n] {
					return &Violation{Invariant: "oversubscription", JobID: id,
						Detail: fmt.Sprintf("allocated node %d twice", n)}
				}
				nodeSeen[n] = true
			}
		}
	}
	if submitted != nil {
		for _, j := range submitted {
			if !seen[j.ID] {
				return &Violation{Invariant: "conservation", JobID: j.ID, Detail: "submitted but never completed"}
			}
		}
	}
	return checkNodeTimeline(capacity, records)
}

// checkNodeTimeline sweeps every record's [Start, End) interval and
// asserts that no node hosts two jobs at once and total usage never
// exceeds capacity. Records without node IDs (external results) fall
// back to the capacity check only.
func checkNodeTimeline(capacity int, records []sim.Record) error {
	type ev struct {
		at    job.Time
		delta int // +Nodes on start, -Nodes on end
		rec   int
	}
	evs := make([]ev, 0, 2*len(records))
	for i, r := range records {
		evs = append(evs,
			ev{at: r.Start, delta: r.Job.Nodes, rec: i},
			ev{at: r.End, delta: -r.Job.Nodes, rec: i})
	}
	// Releases sort before acquisitions at the same instant: a node a
	// job frees at t may be reused by a job starting at t.
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].at != evs[k].at {
			return evs[i].at < evs[k].at
		}
		return evs[i].delta < evs[k].delta
	})
	used := 0
	holder := make(map[int]int, capacity) // node -> record index + 1
	for _, e := range evs {
		r := records[e.rec]
		if e.delta < 0 {
			used += e.delta
			for _, n := range r.NodeIDs {
				delete(holder, n)
			}
			continue
		}
		used += e.delta
		if used > capacity {
			return &Violation{Invariant: "oversubscription", JobID: r.Job.ID,
				Detail: fmt.Sprintf("%d nodes in use on a %d-node machine at t=%d", used, capacity, e.at)}
		}
		for _, n := range r.NodeIDs {
			if prev, busy := holder[n]; busy {
				return &Violation{Invariant: "oversubscription", JobID: r.Job.ID,
					Detail: fmt.Sprintf("node %d shared with job %d at t=%d", n, records[prev-1].Job.ID, e.at)}
			}
			holder[n] = e.rec + 1
		}
	}
	return nil
}
