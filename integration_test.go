package schedsearch_test

import (
	"fmt"
	"testing"

	"schedsearch"
)

// allPolicies is every policy name ParsePolicy accepts.
var allPolicies = []string{
	"FCFS-backfill", "LXF-backfill", "SJF-backfill", "LXFW-backfill",
	"Selective-backfill", "Relaxed-backfill", "Slack-backfill",
	"Lookahead", "Conservative-backfill", "Maui-backfill",
	"MultiQueue-backfill",
	"DDS/lxf/dynB", "DDS/fcfs/dynB", "LDS/lxf/dynB", "DFS/lxf/dynB",
	"DDS/lxf/50h", "CDDS/lxf/dynB", "ADDS/fcfs/dynB",
	"meta(DDS/lxf/dynB,FCFS-backfill)",
}

// TestEveryPolicyCompletesEveryMode drives the full policy set through
// the simulator across load and estimate modes, verifying the engine's
// invariants and the internal consistency of the measures.
func TestEveryPolicyCompletesEveryMode(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 2, JobScale: 0.08})
	modes := []schedsearch.SimOptions{
		{},
		{TargetLoad: 0.9},
		{UseRequested: true},
		{TargetLoad: 0.9, UseRequested: true},
	}
	months := []string{"7/03", "1/04"}
	for _, name := range allPolicies {
		for mi, opt := range modes {
			for _, month := range months {
				t.Run(fmt.Sprintf("%s/m%d/%s", name, mi, month), func(t *testing.T) {
					pol, err := schedsearch.ParsePolicy(name, 300)
					if err != nil {
						t.Fatal(err)
					}
					sum, res, err := schedsearch.RunMonth(suite, month, opt, pol)
					if err != nil {
						t.Fatal(err)
					}
					if sum.Jobs < 50 {
						t.Fatalf("only %d jobs measured", sum.Jobs)
					}
					// Internal consistency of the measures.
					if sum.MaxWaitH < sum.P98WaitH || sum.P98WaitH < 0 {
						t.Errorf("max %.2f < p98 %.2f", sum.MaxWaitH, sum.P98WaitH)
					}
					if sum.AvgWaitH > sum.MaxWaitH {
						t.Errorf("avg %.2f > max %.2f", sum.AvgWaitH, sum.MaxWaitH)
					}
					if sum.AvgBoundedSlowdown < 1 {
						t.Errorf("avg bounded slowdown %.2f < 1", sum.AvgBoundedSlowdown)
					}
					if sum.MaxBoundedSlowdown < sum.AvgBoundedSlowdown {
						t.Errorf("max bsld %.2f < avg %.2f",
							sum.MaxBoundedSlowdown, sum.AvgBoundedSlowdown)
					}
					if sum.AvgQueueLen < 0 {
						t.Errorf("negative queue length")
					}
					// Excess w.r.t. the run's own max is identically zero.
					if e := schedsearch.ExcessiveWait(res, sum.MaxWaitH); e.Count != 0 {
						t.Errorf("excess vs own max: %+v", e)
					}
					// And w.r.t. zero it covers every positive wait.
					e0 := schedsearch.ExcessiveWait(res, 0)
					if e0.TotalH < sum.AvgWaitH*float64(sum.Jobs)*0.999 {
						t.Errorf("excess vs 0 (%.2f) below total wait (%.2f)",
							e0.TotalH, sum.AvgWaitH*float64(sum.Jobs))
					}
				})
			}
		}
	}
}

// TestPolicyDeterminism re-runs a stateful policy on the same input and
// requires identical results.
func TestPolicyDeterminism(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 3, JobScale: 0.08})
	for _, name := range []string{"DDS/lxf/dynB", "Selective-backfill", "Slack-backfill", "MultiQueue-backfill"} {
		var first schedsearch.Summary
		for rep := 0; rep < 2; rep++ {
			pol, err := schedsearch.ParsePolicy(name, 300)
			if err != nil {
				t.Fatal(err)
			}
			sum, _, err := schedsearch.RunMonth(suite, "9/03", schedsearch.SimOptions{TargetLoad: 0.9}, pol)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				first = sum
			} else if sum != first {
				t.Errorf("%s: run 2 differs: %+v vs %+v", name, sum, first)
			}
		}
	}
}

// TestSearchPoliciesBeatTheirHeuristicSeed: the committed schedules of a
// search policy must not be worse than pure iteration-0 behaviour in
// aggregate — compare DDS/lxf/dynB at L=1 (heuristic only) against a
// real budget on the first-level objective.
func TestSearchBudgetHelpsFirstLevelObjective(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 4, JobScale: 0.15})
	run := func(limit int) float64 {
		pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), limit)
		sum, _, err := schedsearch.RunMonth(suite, "1/04", schedsearch.SimOptions{TargetLoad: 0.9}, pol)
		if err != nil {
			t.Fatal(err)
		}
		return sum.MaxWaitH
	}
	tiny := run(1)
	big := run(4000)
	// Closed-loop scheduling is noisy, so allow slack — but a real
	// budget should not be dramatically worse than no search at all.
	if big > tiny*1.5+5 {
		t.Errorf("max wait with L=4000 (%.1f h) much worse than with L=1 (%.1f h)", big, tiny)
	}
}
