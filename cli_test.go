package schedsearch_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"schedsearch/internal/engine"
)

// buildCmd compiles one of the repo's commands into dir and returns
// the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// TestSchedsimJSON runs the schedsim binary with -json and checks the
// output parses as the daemon's /v1/metrics schema with coherent
// values.
func TestSchedsimJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the schedsim binary")
	}
	bin := buildCmd(t, t.TempDir(), "schedsim")
	out, err := exec.Command(bin,
		"-json", "-month", "7/03", "-scale", "0.05", "-policy", "DDS/lxf/dynB", "-L", "200").Output()
	if err != nil {
		t.Fatalf("schedsim -json: %v", err)
	}
	var m engine.Metrics
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("output is not /v1/metrics JSON: %v\n%s", err, out)
	}
	if m.Policy != "DDS/lxf/dynB" {
		t.Errorf("policy %q, want DDS/lxf/dynB", m.Policy)
	}
	if m.Summary.Jobs == 0 || m.Jobs.Done == 0 {
		t.Errorf("empty run: %+v", m)
	}
	if m.Engine.Decisions == 0 || m.Engine.SearchNodes == 0 {
		t.Errorf("missing engine counters: %+v", m.Engine)
	}
	if m.Summary.UtilizedLoad <= 0 || m.Summary.UtilizedLoad > 1 {
		t.Errorf("utilized load %v out of range", m.Summary.UtilizedLoad)
	}
}

// TestScheddFanout is the end-to-end multi-process federation test: a
// schedd supervisor spawns four shard child processes (each a full
// daemon with its own journal), fronts them over real TCP, and the
// whole cluster schedules submitted jobs, reports per-shard readiness
// and federation metrics, then drains — children and supervisor all
// exiting cleanly.
func TestScheddFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 5-process schedd cluster")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "schedd")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-fanout", "4", "-policy", "DDS/lxf/dynB", "-L", "200",
		"-capacity", "32", "-speedup", "600", "-gossip", "30", "-steal",
		"-journal", filepath.Join(dir, "fan.journal"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(line, "4 remote shards") {
		t.Fatalf("startup line %q does not announce the remote federation", line)
	}
	i := strings.LastIndex(line, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len("listening on "):])

	getJSON := func(path string, wantStatus int) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if wantStatus != 0 && resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	// Readiness must carry the per-shard breakdown: four healthy shard
	// processes behind the front-end.
	ready := getJSON("/v1/readyz", http.StatusOK)
	if ready["ready"] != true {
		t.Fatalf("readyz: %v", ready)
	}
	shards, _ := ready["shards"].([]any)
	if len(shards) != 4 {
		t.Fatalf("readyz shards %v, want 4", ready["shards"])
	}
	for _, sh := range shards {
		if sh.(map[string]any)["healthy"] != true {
			t.Fatalf("unhealthy shard at boot: %v", sh)
		}
	}

	// Submit eight 4-node jobs (each shard partition holds 8 nodes);
	// every one must complete on some shard, over the wire.
	var ids []int
	for k := 0; k < 8; k++ {
		body := fmt.Sprintf(`{"nodes":4,"runtime_s":300,"user":%d}`, k)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST /v1/jobs: bad JSON: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			t.Fatalf("POST /v1/jobs: %d %v", resp.StatusCode, m)
		}
		ids = append(ids, int(m["id"].(float64)))
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			st := getJSON(fmt.Sprintf("/v1/jobs/%d", id), 0)
			if st["state"] == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in state %v", id, st["state"])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	fedRep := getJSON("/v1/federation", http.StatusOK)
	if fedRep["shards"] != float64(4) {
		t.Fatalf("federation report %v, want 4 shards", fedRep["shards"])
	}

	// Drain: must propagate to every child, which then exit on their
	// own; the supervisor reaps them and exits cleanly.
	resp, err := http.Post(base+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /v1/drain: %v", err)
	}
	resp.Body.Close()
	restCh := make(chan struct{}, 1)
	go func() {
		io.Copy(io.Discard, reader)
		restCh <- struct{}{}
	}()
	select {
	case <-restCh:
	case <-time.After(30 * time.Second):
		t.Fatal("schedd supervisor did not exit after drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("schedd exit: %v (stderr: %s)", err, stderr.String())
	}

	// Each shard child journaled its own events.
	for s := 0; s < 4; s++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("fan.journal.shard-%d", s)))
		if err != nil {
			t.Fatalf("shard %d journal: %v", s, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("shard %d journal is empty", s)
		}
	}
}

// TestScheddHTTP is the end-to-end acceptance test: start the daemon
// with the paper's best search policy, submit jobs over HTTP, watch
// them schedule, read coherent metrics, then drain and wait for a
// clean exit.
func TestScheddHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the schedd binary")
	}
	bin := buildCmd(t, t.TempDir(), "schedd")
	// 600 engine seconds per wall second: the 300-second jobs below
	// complete in ~0.5s wall.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-policy", "DDS/lxf/dynB", "-L", "500",
		"-capacity", "16", "-speedup", "600")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "… listening on HOST:PORT" once ready.
	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	i := strings.LastIndex(line, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len("listening on "):])

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", path, err)
		}
		if resp.StatusCode >= 400 {
			t.Fatalf("POST %s: %d %v", path, resp.StatusCode, m)
		}
		return m
	}
	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	// Submit a handful of jobs; the machine (16 nodes) can run two of
	// the 8-node jobs at once, so some must queue.
	var ids []int
	for k := 0; k < 4; k++ {
		r := post("/v1/jobs", `{"nodes":8,"runtime_s":300,"user":1}`)
		ids = append(ids, int(r["id"].(float64)))
	}

	// Every job must eventually complete (4 × 300s at 600× ≈ 1s wall).
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			st := get(fmt.Sprintf("/v1/jobs/%d", id))
			if st["state"] == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in state %v", id, st["state"])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	met := get("/v1/metrics")
	if met["policy"] != "DDS/lxf/dynB" {
		t.Errorf("metrics policy %v", met["policy"])
	}
	jobs := met["jobs"].(map[string]any)
	if jobs["done"] != float64(4) {
		t.Errorf("metrics jobs %v, want 4 done", jobs)
	}
	summary := met["summary"].(map[string]any)
	if summary["jobs"] != float64(4) || summary["avg_bounded_slowdown"].(float64) < 1 {
		t.Errorf("incoherent summary %v", summary)
	}
	eng := met["engine"].(map[string]any)
	if eng["decisions"].(float64) < 1 || eng["search_nodes"].(float64) < 1 {
		t.Errorf("incoherent engine counters %v", eng)
	}

	// Drain: the daemon must refuse new work, then exit cleanly and
	// print final metrics on stdout. Read stdout to EOF before Wait —
	// Wait closes the pipe and would discard the buffered JSON.
	post("/v1/drain", "")
	restCh := make(chan []byte, 1)
	go func() {
		rest, _ := io.ReadAll(reader)
		restCh <- rest
	}()
	var rest []byte
	select {
	case rest = <-restCh:
	case <-time.After(30 * time.Second):
		t.Fatal("schedd did not exit after drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("schedd exit: %v (stderr: %s)", err, stderr.String())
	}
	var final engine.Metrics
	if err := json.Unmarshal(rest, &final); err != nil {
		t.Fatalf("final metrics not JSON: %v\n%q", err, rest)
	}
	if !final.Draining || final.Jobs.Done != 4 {
		t.Errorf("final metrics %+v, want draining with 4 done", final)
	}
}
