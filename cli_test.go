package schedsearch_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"schedsearch/internal/engine"
)

// buildCmd compiles one of the repo's commands into dir and returns
// the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// TestSchedsimJSON runs the schedsim binary with -json and checks the
// output parses as the daemon's /v1/metrics schema with coherent
// values.
func TestSchedsimJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the schedsim binary")
	}
	bin := buildCmd(t, t.TempDir(), "schedsim")
	out, err := exec.Command(bin,
		"-json", "-month", "7/03", "-scale", "0.05", "-policy", "DDS/lxf/dynB", "-L", "200").Output()
	if err != nil {
		t.Fatalf("schedsim -json: %v", err)
	}
	var m engine.Metrics
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("output is not /v1/metrics JSON: %v\n%s", err, out)
	}
	if m.Policy != "DDS/lxf/dynB" {
		t.Errorf("policy %q, want DDS/lxf/dynB", m.Policy)
	}
	if m.Summary.Jobs == 0 || m.Jobs.Done == 0 {
		t.Errorf("empty run: %+v", m)
	}
	if m.Engine.Decisions == 0 || m.Engine.SearchNodes == 0 {
		t.Errorf("missing engine counters: %+v", m.Engine)
	}
	if m.Summary.UtilizedLoad <= 0 || m.Summary.UtilizedLoad > 1 {
		t.Errorf("utilized load %v out of range", m.Summary.UtilizedLoad)
	}
}

// TestScheddHTTP is the end-to-end acceptance test: start the daemon
// with the paper's best search policy, submit jobs over HTTP, watch
// them schedule, read coherent metrics, then drain and wait for a
// clean exit.
func TestScheddHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the schedd binary")
	}
	bin := buildCmd(t, t.TempDir(), "schedd")
	// 600 engine seconds per wall second: the 300-second jobs below
	// complete in ~0.5s wall.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-policy", "DDS/lxf/dynB", "-L", "500",
		"-capacity", "16", "-speedup", "600")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "… listening on HOST:PORT" once ready.
	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	i := strings.LastIndex(line, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len("listening on "):])

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", path, err)
		}
		if resp.StatusCode >= 400 {
			t.Fatalf("POST %s: %d %v", path, resp.StatusCode, m)
		}
		return m
	}
	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	// Submit a handful of jobs; the machine (16 nodes) can run two of
	// the 8-node jobs at once, so some must queue.
	var ids []int
	for k := 0; k < 4; k++ {
		r := post("/v1/jobs", `{"nodes":8,"runtime_s":300,"user":1}`)
		ids = append(ids, int(r["id"].(float64)))
	}

	// Every job must eventually complete (4 × 300s at 600× ≈ 1s wall).
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			st := get(fmt.Sprintf("/v1/jobs/%d", id))
			if st["state"] == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in state %v", id, st["state"])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	met := get("/v1/metrics")
	if met["policy"] != "DDS/lxf/dynB" {
		t.Errorf("metrics policy %v", met["policy"])
	}
	jobs := met["jobs"].(map[string]any)
	if jobs["done"] != float64(4) {
		t.Errorf("metrics jobs %v, want 4 done", jobs)
	}
	summary := met["summary"].(map[string]any)
	if summary["jobs"] != float64(4) || summary["avg_bounded_slowdown"].(float64) < 1 {
		t.Errorf("incoherent summary %v", summary)
	}
	eng := met["engine"].(map[string]any)
	if eng["decisions"].(float64) < 1 || eng["search_nodes"].(float64) < 1 {
		t.Errorf("incoherent engine counters %v", eng)
	}

	// Drain: the daemon must refuse new work, then exit cleanly and
	// print final metrics on stdout. Read stdout to EOF before Wait —
	// Wait closes the pipe and would discard the buffered JSON.
	post("/v1/drain", "")
	restCh := make(chan []byte, 1)
	go func() {
		rest, _ := io.ReadAll(reader)
		restCh <- rest
	}()
	var rest []byte
	select {
	case rest = <-restCh:
	case <-time.After(30 * time.Second):
		t.Fatal("schedd did not exit after drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("schedd exit: %v (stderr: %s)", err, stderr.String())
	}
	var final engine.Metrics
	if err := json.Unmarshal(rest, &final); err != nil {
		t.Fatalf("final metrics not JSON: %v\n%q", err, rest)
	}
	if !final.Draining || final.Jobs.Done != 4 {
		t.Errorf("final metrics %+v, want draining with 4 done", final)
	}
}
