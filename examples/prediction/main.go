// Prediction: the paper's runtime-prediction future-work direction.
// Schedulers plan better with accurate runtimes; user requests are loose
// overestimates. This example runs the same policy under three estimate
// sources — perfect (R*=T), user requests (R*=R), and a Tsafrir-style
// per-user history predictor — and shows prediction recovering part of
// the gap.
package main

import (
	"fmt"
	"log"

	"schedsearch"
)

func main() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.25})
	const month = "9/03"
	high := schedsearch.SimOptions{TargetLoad: 0.9}

	type mode struct {
		name string
		opt  schedsearch.SimOptions
		est  schedsearch.Estimator
	}
	modes := []mode{
		{name: "perfect (R*=T)", opt: high},
		{name: "requests (R*=R)", opt: schedsearch.SimOptions{TargetLoad: 0.9, UseRequested: true}},
		{name: "predicted (R*=pred)", opt: high, est: schedsearch.NewUserHistoryPredictor()},
	}

	fmt.Printf("%-22s %10s %10s %8s\n", "estimate source", "avgWait(h)", "maxWait(h)", "avgBsld")
	for _, m := range modes {
		pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 1000)
		sum, _, err := schedsearch.RunMonthWithEstimator(suite, month, m.opt, m.est, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %10.2f %8.2f\n",
			m.name, sum.AvgWaitH, sum.MaxWaitH, sum.AvgBoundedSlowdown)
	}
	fmt.Println("\nPrediction should land between requests and perfect information,")
	fmt.Println("mostly by tightening the dynamic wait bound's planning accuracy.")
}
