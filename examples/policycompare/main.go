// Policycompare: run the full cast of non-preemptive policies — the two
// paper baselines, the published backfill variants of Section 3.2, and
// the search-based scheduler — on one high-load month, and print a
// league table. This is the experiment a site administrator would run
// to pick a policy for their own (synthetic or SWF-imported) workload.
package main

import (
	"fmt"
	"log"
	"sort"

	"schedsearch"
)

func main() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.25})
	opts := schedsearch.SimOptions{TargetLoad: 0.9} // the paper's high-load setting

	names := []string{
		"FCFS-backfill",
		"LXF-backfill",
		"SJF-backfill",
		"LXFW-backfill",
		"Selective-backfill",
		"Relaxed-backfill",
		"Slack-backfill",
		"Lookahead",
		"DDS/lxf/dynB",
		"LDS/lxf/dynB",
	}

	type row struct {
		name string
		sum  schedsearch.Summary
	}
	var rows []row
	for _, name := range names {
		pol, err := schedsearch.ParsePolicy(name, 1000)
		if err != nil {
			log.Fatal(err)
		}
		sum, _, err := schedsearch.RunMonth(suite, "9/03", opts, pol)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name: name, sum: sum})
	}

	// Rank by the paper's first-level goal (low max wait), then by
	// average bounded slowdown.
	sort.SliceStable(rows, func(i, k int) bool {
		if rows[i].sum.MaxWaitH != rows[k].sum.MaxWaitH {
			return rows[i].sum.MaxWaitH < rows[k].sum.MaxWaitH
		}
		return rows[i].sum.AvgBoundedSlowdown < rows[k].sum.AvgBoundedSlowdown
	})

	fmt.Printf("month 9/03 at rho=0.9 — %d jobs measured\n\n", rows[0].sum.Jobs)
	fmt.Printf("%-20s %10s %10s %10s %8s\n", "policy", "avgWait(h)", "maxWait(h)", "p98Wait(h)", "avgBsld")
	for _, r := range rows {
		fmt.Printf("%-20s %10.2f %10.2f %10.2f %8.2f\n",
			r.name, r.sum.AvgWaitH, r.sum.MaxWaitH, r.sum.P98WaitH, r.sum.AvgBoundedSlowdown)
	}
}
