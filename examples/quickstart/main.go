// Quickstart: generate the synthetic NCSA IA-64 workload suite, run the
// paper's best policy (DDS/lxf/dynB) on one month, and print the
// headline measures next to the FCFS-backfill baseline.
package main

import (
	"fmt"
	"log"

	"schedsearch"
)

func main() {
	// The suite is deterministic given the seed. Scale 0.25 shrinks
	// each month (job count and duration together) so the example runs
	// in well under a second; use Scale 1 for paper-scale months.
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.25})

	baseline := schedsearch.FCFSBackfill()
	search := schedsearch.NewSearchScheduler(
		schedsearch.DDS,            // depth-bounded discrepancy search
		schedsearch.HeuristicLXF,   // largest-slowdown-first branching
		schedsearch.DynamicBound(), // target wait bound = longest current wait
		1000,                       // search-tree node budget per decision
	)

	for _, pol := range []schedsearch.Policy{baseline, search} {
		sum, _, err := schedsearch.RunMonth(suite, "7/03", schedsearch.SimOptions{}, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s avg wait %6.2f h   max wait %7.2f h   avg bounded slowdown %6.2f\n",
			sum.Policy, sum.AvgWaitH, sum.MaxWaitH, sum.AvgBoundedSlowdown)
	}
	fmt.Println("\nDDS/lxf/dynB should beat FCFS-backfill on the averages while")
	fmt.Println("matching (or beating) its maximum wait — the paper's headline result.")
}
