// Searchtuning: explore the two knobs of the search-based scheduler —
// the node budget L (the paper's Figure 6) and the fixed target wait
// bound ω (the paper's Figure 2) — on one month, and show the search
// effort counters exposed by the scheduler.
package main

import (
	"fmt"
	"log"

	"schedsearch"
)

func main() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.25})
	opts := schedsearch.SimOptions{TargetLoad: 0.9}
	const month = "1/04" // the paper's hardest month

	fmt.Println("--- node budget sweep (DDS/lxf/dynB): the anytime property ---")
	fmt.Printf("%8s %10s %10s %8s %14s %12s\n", "L", "avgWait(h)", "maxWait(h)", "avgBsld", "nodes visited", "budget hits")
	for _, L := range []int{250, 1000, 4000, 16000} {
		sch := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), L)
		sum, _, err := schedsearch.RunMonth(suite, month, opts, sch)
		if err != nil {
			log.Fatal(err)
		}
		st := sch.SearchStats
		fmt.Printf("%8d %10.2f %10.2f %8.2f %14d %12d\n",
			L, sum.AvgWaitH, sum.MaxWaitH, sum.AvgBoundedSlowdown, st.Nodes, st.BudgetHits)
	}

	fmt.Println("\n--- fixed target bound sweep (DDS/lxf, L=1000) ---")
	fmt.Printf("%8s %10s %10s %8s\n", "omega", "avgWait(h)", "maxWait(h)", "avgBsld")
	for _, omegaH := range []int64{0, 12, 50, 100, 300} {
		sch := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.FixedBound(omegaH*schedsearch.Hour), 1000)
		sum, _, err := schedsearch.RunMonth(suite, month, opts, sch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7dh %10.2f %10.2f %8.2f\n",
			omegaH, sum.AvgWaitH, sum.MaxWaitH, sum.AvgBoundedSlowdown)
	}
	fmt.Println("\nA small ω clamps the maximum wait but eventually sacrifices the")
	fmt.Println("averages; ω=0 degenerates to average-wait minimization (Section 5.1).")
}
