// Customobjective: the paper's "future work" extension — declare a
// target wait bound that is a function of job runtime, so short jobs are
// held to tighter wait bounds, and compare it against the stock
// hierarchical objective. This demonstrates the goal-oriented design:
// administrators change the declared objective, not the scheduler.
package main

import (
	"fmt"
	"log"

	"schedsearch"
)

func main() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.25})
	opts := schedsearch.SimOptions{TargetLoad: 0.9}
	const month = "7/03"

	stock := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 1000)

	// Runtime-scaled objective: a job with estimate e is held to a wait
	// bound of min(dynB, max(1h, 4×e)) — a 10-minute job should not
	// wait longer than ~1 hour, while long jobs keep the dynamic bound.
	scaled := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 1000)
	scaled.Cost = schedsearch.RuntimeScaledCost(4.0, schedsearch.Hour)

	fmt.Printf("%-28s %10s %10s %10s %8s\n", "objective", "avgWait(h)", "maxWait(h)", "p98Wait(h)", "avgBsld")
	for _, c := range []struct {
		name string
		pol  schedsearch.Policy
	}{
		{"hierarchical (paper)", stock},
		{"runtime-scaled bounds", scaled},
	} {
		sum, res, err := schedsearch.RunMonth(suite, month, opts, c.pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.2f %10.2f %10.2f %8.2f\n",
			c.name, sum.AvgWaitH, sum.MaxWaitH, sum.P98WaitH, sum.AvgBoundedSlowdown)
		// Short jobs' service: the excessive-wait family w.r.t. 1 hour.
		e := schedsearch.ExcessiveWait(res, 1)
		fmt.Printf("%-28s %d jobs waited over 1h, totalling %.0f excess hours\n\n",
			"", e.Count, e.TotalH)
	}
	fmt.Println("The runtime-scaled objective should trade a little average")
	fmt.Println("slowdown for stricter short-job wait bounds (Section 6.1's")
	fmt.Println("suggested refinement).")
}
