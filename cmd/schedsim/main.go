// Command schedsim runs one scheduling-policy simulation on a generated
// monthly workload and prints the paper's headline measures.
//
// Usage:
//
//	schedsim -month 7/03 -policy DDS/lxf/dynB -L 1000 -load 0.9
//
// Policies: FCFS-backfill, LXF-backfill, SJF-backfill, LXFW-backfill,
// Selective-backfill, Relaxed-backfill, Slack-backfill, Lookahead, and
// search policies of the form ALGO/HEUR/BOUND with ALGO in {DDS, LDS,
// DFS, ADDS, CDDS}, HEUR in {fcfs, lxf} and BOUND either "dynB" or a
// fixed bound like "100h".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/obs"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		month     = flag.String("month", "6/03", "month label (6/03 .. 3/04)")
		policyArg = flag.String("policy", "DDS/lxf/dynB", "policy name")
		nodeLimit = flag.Int("L", 1000, "search node limit per decision")
		workers   = flag.Int("workers", 1, "parallel search workers for search policies (0 or 1 sequential, -1 one per CPU)")
		warm      = flag.Bool("warm", false, "warm-start the search from the previous decision's best ordering (search policies)")
		carry     = flag.Bool("carry", false, "CDDS: carry the climbing reference ordering across decision points")
		slo       = flag.Duration("slo", 0, "per-decision latency SLO; adapts the node budget to the observed ns/node rate (0 = fixed -L)")
		load      = flag.Float64("load", 0, "target offered load (0 = original)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor")
		requested = flag.Bool("requested", false, "schedulers use requested runtimes (R* = R)")
		verbose   = flag.Bool("v", false, "print per-class wait grid")
		swfIn     = flag.String("swf", "", "simulate this SWF trace file (plain or .gz) instead of a generated month")
		timeline  = flag.Int("timeline", 0, "render a timeline of the first N measured jobs")
		capacity  = flag.Int("capacity", 0, "machine size for -swf (default: trace header MaxNodes, else widest job)")
		jsonOut   = flag.Bool("json", false, "emit the run summary as JSON on stdout (the schema schedd's /v1/metrics serves)")
		flightN   = flag.Int("flight", 0, "record the last N scheduling decisions (queue depth, search effort, incumbent trajectory, commit) and print them as JSON after the summary (0 = off)")
	)
	flag.Parse()

	opts := searchOpts{nodeLimit: *nodeLimit, workers: *workers, warm: *warm, carry: *carry, slo: *slo, flight: *flightN}
	var err error
	if *swfIn != "" {
		err = runSWF(*swfIn, *capacity, *policyArg, opts, *requested, *verbose, *timeline, *jsonOut)
	} else {
		err = run(*month, *policyArg, opts, *load, *seed, *scale, *requested, *verbose, *timeline, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

// searchOpts bundles the flags that only apply to search schedulers,
// plus the flight-recorder size (which applies to every policy).
type searchOpts struct {
	nodeLimit int
	workers   int
	warm      bool
	carry     bool
	slo       time.Duration
	flight    int
}

// parsePolicy builds the policy and applies the search-only options to
// search schedulers (other policies ignore them). With -flight N the
// policy is wrapped in the passive flight-recorder shim; the returned
// recorder is nil otherwise.
func parsePolicy(policyArg string, o searchOpts) (sim.Policy, *obs.FlightRecorder, error) {
	pol, err := schedsearch.ParsePolicy(policyArg, o.nodeLimit)
	if err != nil {
		return nil, nil, err
	}
	if sch, ok := pol.(*core.Scheduler); ok {
		sch.Workers = o.workers
		sch.WarmStart = o.warm
		sch.SLO = o.slo
		sch.CarryClimb = o.carry
	}
	if mp, ok := pol.(*schedsearch.MetaScheduler); ok {
		mp.SetSearchOptions(o.workers, o.warm)
	}
	if o.flight <= 0 {
		return pol, nil, nil
	}
	f := obs.NewFlightRecorder(o.flight)
	return &flightPolicy{inner: pol, f: f}, f, nil
}

// flightPolicy shims a policy into the offline flight recorder: after
// each Decide it copies the decision's summary (search policies expose
// the full search story; heuristics get the generic record) into the
// ring. Strictly passive — it forwards the decision untouched, so
// recorded and unrecorded runs schedule identically.
type flightPolicy struct {
	inner sim.Policy
	f     *obs.FlightRecorder
	rec   obs.DecisionRecord
}

func (p *flightPolicy) Name() string { return p.inner.Name() }

func (p *flightPolicy) Decide(snap *sim.Snapshot) []int {
	t0 := time.Now()
	starts := p.inner.Decide(snap)
	wall := time.Since(t0)
	rec := &p.rec
	startedBuf := rec.Started[:0]
	trajBuf := rec.Trajectory[:0]
	*rec = obs.DecisionRecord{
		NowS:       int64(snap.Now),
		Policy:     p.inner.Name(),
		QueueDepth: len(snap.Queue),
		WallUs:     wall.Microseconds(),
	}
	for _, qi := range starts {
		startedBuf = append(startedBuf, snap.Queue[qi].Job.ID)
	}
	rec.Started = startedBuf
	if ms, ok := p.inner.(interface {
		LastMetaDecision() (string, float64, bool)
	}); ok {
		if name, regret, ok := ms.LastMetaDecision(); ok {
			rec.ChosenPolicy = name
			rec.MetaRegret = regret
		}
	}
	if ds, ok := p.inner.(interface{ LastDecision() core.DecisionSummary }); ok {
		sum := ds.LastDecision()
		rec.EffectiveLimit = sum.EffectiveLimit
		rec.Nodes = sum.Nodes
		rec.Leaves = sum.Leaves
		rec.Pruned = sum.Pruned
		rec.NodesToBest = sum.NodesToBest
		rec.BudgetHit = sum.BudgetHit
		rec.WarmSeeded = sum.WarmSeeded
		rec.SeedHeld = sum.SeedHeld
		rec.Parallel = sum.Parallel
		if sum.BestFound {
			rec.BestExcess = sum.BestCost[0]
			rec.BestSlowdown = sum.BestCost[1]
		}
		for _, pt := range sum.Trajectory {
			trajBuf = append(trajBuf, obs.TrajectoryPoint{
				Nodes: pt.Nodes, Excess: pt.Cost[0], Slowdown: pt.Cost[1],
			})
		}
	}
	rec.Trajectory = trajBuf
	p.f.Record(rec)
	return starts
}

// printFlight dumps the recorded decisions as a JSON document on
// stdout (after the summary; with -json it is the second document).
func printFlight(f *obs.FlightRecorder) error {
	if f == nil {
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Total     int64                `json:"total"`
		Decisions []obs.DecisionRecord `json:"decisions"`
	}{Total: f.Total(), Decisions: f.Snapshot()})
}

// emitJSON writes the run summary as machine-readable JSON in the
// same schema the schedd daemon serves at GET /v1/metrics.
func emitJSON(res *sim.Result, s metrics.Summary, pol sim.Policy) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(engine.OfflineMetrics(res, s, pol))
}

// runSWF simulates a policy over an external SWF trace.
func runSWF(path string, capacity int, policyArg string, opts searchOpts, requested, verbose bool, timeline int, jsonOut bool) error {
	jobs, header, err := trace.ReadSWFFile(path)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("%s: no usable jobs", path)
	}
	sort.Sort(job.BySubmit(jobs))
	if capacity == 0 {
		capacity = header.MaxNodes
	}
	for _, j := range jobs {
		if j.Nodes > capacity {
			capacity = j.Nodes
		}
	}
	pol, flight, err := parsePolicy(policyArg, opts)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Input{Capacity: capacity, Jobs: jobs, UseRequested: requested}, pol)
	if err != nil {
		return err
	}
	if err := metrics.CheckConservation(res); err != nil {
		return err
	}
	s := metrics.Summarize(res)
	if jsonOut {
		if err := emitJSON(res, s, statsPolicy(pol)); err != nil {
			return err
		}
		return printFlight(flight)
	}
	fmt.Printf("trace %s: %d jobs on %d nodes\n", path, s.Jobs, capacity)
	printSummary(res, s, statsPolicy(pol))
	if verbose {
		printGrid(metrics.ComputeClassGrid(res))
	}
	printTimeline(res, timeline)
	return printFlight(flight)
}

// statsPolicy unwraps the flight shim so the search-statistics report
// still sees the *core.Scheduler underneath.
func statsPolicy(pol sim.Policy) sim.Policy {
	if fp, ok := pol.(*flightPolicy); ok {
		return fp.inner
	}
	return pol
}

func run(month, policyArg string, opts searchOpts, load float64, seed uint64, scale float64, requested, verbose bool, timeline int, jsonOut bool) error {
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	in, m, err := suite.Input(month, workload.SimOptions{TargetLoad: load, UseRequested: requested})
	if err != nil {
		return err
	}
	pol, flight, err := parsePolicy(policyArg, opts)
	if err != nil {
		return err
	}

	res, err := sim.Run(in, pol)
	if err != nil {
		return err
	}
	if err := metrics.CheckConservation(res); err != nil {
		return err
	}
	s := metrics.Summarize(res)
	if jsonOut {
		if err := emitJSON(res, s, statsPolicy(pol)); err != nil {
			return err
		}
		return printFlight(flight)
	}

	fmt.Printf("month %s: %d jobs, offered load %.2f (spec %.2f)\n",
		m.Spec.Label, s.Jobs, effectiveLoad(m, load), m.Spec.Load)
	printSummary(res, s, statsPolicy(pol))
	if verbose {
		printGrid(metrics.ComputeClassGrid(res))
	}
	printTimeline(res, timeline)
	return printFlight(flight)
}

// printTimeline renders the first n measured jobs as queue/run bars.
func printTimeline(res *sim.Result, n int) {
	if n <= 0 {
		return
	}
	tl := report.NewTimeline()
	added := 0
	for _, r := range res.Records {
		if !r.Measured {
			continue
		}
		tl.Add(report.TimelineJob{
			Label:  fmt.Sprintf("#%d n=%d", r.Job.ID, r.Job.Nodes),
			Submit: r.Job.Submit,
			Start:  r.Start,
			End:    r.End,
		})
		added++
		if added >= n {
			break
		}
	}
	fmt.Println()
	tl.Write(os.Stdout)
}

func printSummary(res *sim.Result, s metrics.Summary, pol sim.Policy) {
	fmt.Printf("policy %s\n", res.Policy)
	fmt.Printf("  avg wait            %8.2f h\n", s.AvgWaitH)
	fmt.Printf("  max wait            %8.2f h\n", s.MaxWaitH)
	fmt.Printf("  98%%-ile wait        %8.2f h\n", s.P98WaitH)
	fmt.Printf("  avg bounded slowdown %7.2f\n", s.AvgBoundedSlowdown)
	fmt.Printf("  avg queue length    %8.2f\n", s.AvgQueueLen)
	fmt.Printf("  decision points     %8d\n", res.Decisions)
	if sch, ok := pol.(*core.Scheduler); ok {
		st := sch.SearchStats
		fmt.Printf("  search: %d decisions, %d nodes, %d schedules evaluated, budget hit %d times\n",
			st.Decisions, st.Nodes, st.Leaves, st.BudgetHits)
		fmt.Printf("  search time: %.1f ms wall, speedup %.2fx\n",
			float64(st.WallNs)/1e6, st.Speedup())
		if sch.WarmStart && st.Decisions > 0 {
			fmt.Printf("  warm start: %d seeded decisions, seed held %d, avg nodes-to-best %.1f\n",
				st.WarmDecisions, st.WarmSeedHeld,
				float64(st.NodesToBest)/float64(st.Decisions))
		}
		if sch.SLO > 0 && st.Decisions > 0 {
			fmt.Printf("  slo %v: avg effective L %.0f\n",
				sch.SLO, float64(st.EffectiveLimitSum)/float64(st.Decisions))
		}
	}
}

func effectiveLoad(m *workload.Month, target float64) float64 {
	if target > 0 {
		return target
	}
	return m.AchievedLoad
}

func printGrid(g metrics.ClassGrid) {
	fmt.Printf("\navg wait (h) by actual runtime x requested nodes:\n%12s", "")
	for _, n := range g.NodeClasses {
		fmt.Printf("%10s", n.String())
	}
	fmt.Println()
	for t := range g.RuntimeClasses {
		fmt.Printf("%12s", g.RuntimeClasses[t].String())
		for n := range g.NodeClasses {
			if g.Count[t][n] == 0 {
				fmt.Printf("%10s", "-")
			} else {
				fmt.Printf("%10.2f", g.AvgWaitH[t][n])
			}
		}
		fmt.Println()
	}
}
