// Command schedsim runs one scheduling-policy simulation on a generated
// monthly workload and prints the paper's headline measures.
//
// Usage:
//
//	schedsim -month 7/03 -policy DDS/lxf/dynB -L 1000 -load 0.9
//
// Policies: FCFS-backfill, LXF-backfill, SJF-backfill, LXFW-backfill,
// Selective-backfill, Relaxed-backfill, Slack-backfill, Lookahead, and
// search policies of the form ALGO/HEUR/BOUND with ALGO in {DDS, LDS,
// DFS, ADDS, CDDS}, HEUR in {fcfs, lxf} and BOUND either "dynB" or a
// fixed bound like "100h".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		month     = flag.String("month", "6/03", "month label (6/03 .. 3/04)")
		policyArg = flag.String("policy", "DDS/lxf/dynB", "policy name")
		nodeLimit = flag.Int("L", 1000, "search node limit per decision")
		workers   = flag.Int("workers", 1, "parallel search workers for search policies (0 or 1 sequential, -1 one per CPU)")
		warm      = flag.Bool("warm", false, "warm-start the search from the previous decision's best ordering (search policies)")
		slo       = flag.Duration("slo", 0, "per-decision latency SLO; adapts the node budget to the observed ns/node rate (0 = fixed -L)")
		load      = flag.Float64("load", 0, "target offered load (0 = original)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor")
		requested = flag.Bool("requested", false, "schedulers use requested runtimes (R* = R)")
		verbose   = flag.Bool("v", false, "print per-class wait grid")
		swfIn     = flag.String("swf", "", "simulate this SWF trace file (plain or .gz) instead of a generated month")
		timeline  = flag.Int("timeline", 0, "render a timeline of the first N measured jobs")
		capacity  = flag.Int("capacity", 0, "machine size for -swf (default: trace header MaxNodes, else widest job)")
		jsonOut   = flag.Bool("json", false, "emit the run summary as JSON on stdout (the schema schedd's /v1/metrics serves)")
	)
	flag.Parse()

	opts := searchOpts{nodeLimit: *nodeLimit, workers: *workers, warm: *warm, slo: *slo}
	var err error
	if *swfIn != "" {
		err = runSWF(*swfIn, *capacity, *policyArg, opts, *requested, *verbose, *timeline, *jsonOut)
	} else {
		err = run(*month, *policyArg, opts, *load, *seed, *scale, *requested, *verbose, *timeline, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

// searchOpts bundles the flags that only apply to search schedulers.
type searchOpts struct {
	nodeLimit int
	workers   int
	warm      bool
	slo       time.Duration
}

// parsePolicy builds the policy and applies the search-only options to
// search schedulers (other policies ignore them).
func parsePolicy(policyArg string, o searchOpts) (sim.Policy, error) {
	pol, err := schedsearch.ParsePolicy(policyArg, o.nodeLimit)
	if err != nil {
		return nil, err
	}
	if sch, ok := pol.(*core.Scheduler); ok {
		sch.Workers = o.workers
		sch.WarmStart = o.warm
		sch.SLO = o.slo
	}
	return pol, nil
}

// emitJSON writes the run summary as machine-readable JSON in the
// same schema the schedd daemon serves at GET /v1/metrics.
func emitJSON(res *sim.Result, s metrics.Summary, pol sim.Policy) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(engine.OfflineMetrics(res, s, pol))
}

// runSWF simulates a policy over an external SWF trace.
func runSWF(path string, capacity int, policyArg string, opts searchOpts, requested, verbose bool, timeline int, jsonOut bool) error {
	jobs, header, err := trace.ReadSWFFile(path)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("%s: no usable jobs", path)
	}
	sort.Sort(job.BySubmit(jobs))
	if capacity == 0 {
		capacity = header.MaxNodes
	}
	for _, j := range jobs {
		if j.Nodes > capacity {
			capacity = j.Nodes
		}
	}
	pol, err := parsePolicy(policyArg, opts)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Input{Capacity: capacity, Jobs: jobs, UseRequested: requested}, pol)
	if err != nil {
		return err
	}
	if err := metrics.CheckConservation(res); err != nil {
		return err
	}
	s := metrics.Summarize(res)
	if jsonOut {
		return emitJSON(res, s, pol)
	}
	fmt.Printf("trace %s: %d jobs on %d nodes\n", path, s.Jobs, capacity)
	printSummary(res, s, pol)
	if verbose {
		printGrid(metrics.ComputeClassGrid(res))
	}
	printTimeline(res, timeline)
	return nil
}

func run(month, policyArg string, opts searchOpts, load float64, seed uint64, scale float64, requested, verbose bool, timeline int, jsonOut bool) error {
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	in, m, err := suite.Input(month, workload.SimOptions{TargetLoad: load, UseRequested: requested})
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policyArg, opts)
	if err != nil {
		return err
	}

	res, err := sim.Run(in, pol)
	if err != nil {
		return err
	}
	if err := metrics.CheckConservation(res); err != nil {
		return err
	}
	s := metrics.Summarize(res)
	if jsonOut {
		return emitJSON(res, s, pol)
	}

	fmt.Printf("month %s: %d jobs, offered load %.2f (spec %.2f)\n",
		m.Spec.Label, s.Jobs, effectiveLoad(m, load), m.Spec.Load)
	printSummary(res, s, pol)
	if verbose {
		printGrid(metrics.ComputeClassGrid(res))
	}
	printTimeline(res, timeline)
	return nil
}

// printTimeline renders the first n measured jobs as queue/run bars.
func printTimeline(res *sim.Result, n int) {
	if n <= 0 {
		return
	}
	tl := report.NewTimeline()
	added := 0
	for _, r := range res.Records {
		if !r.Measured {
			continue
		}
		tl.Add(report.TimelineJob{
			Label:  fmt.Sprintf("#%d n=%d", r.Job.ID, r.Job.Nodes),
			Submit: r.Job.Submit,
			Start:  r.Start,
			End:    r.End,
		})
		added++
		if added >= n {
			break
		}
	}
	fmt.Println()
	tl.Write(os.Stdout)
}

func printSummary(res *sim.Result, s metrics.Summary, pol sim.Policy) {
	fmt.Printf("policy %s\n", res.Policy)
	fmt.Printf("  avg wait            %8.2f h\n", s.AvgWaitH)
	fmt.Printf("  max wait            %8.2f h\n", s.MaxWaitH)
	fmt.Printf("  98%%-ile wait        %8.2f h\n", s.P98WaitH)
	fmt.Printf("  avg bounded slowdown %7.2f\n", s.AvgBoundedSlowdown)
	fmt.Printf("  avg queue length    %8.2f\n", s.AvgQueueLen)
	fmt.Printf("  decision points     %8d\n", res.Decisions)
	if sch, ok := pol.(*core.Scheduler); ok {
		st := sch.SearchStats
		fmt.Printf("  search: %d decisions, %d nodes, %d schedules evaluated, budget hit %d times\n",
			st.Decisions, st.Nodes, st.Leaves, st.BudgetHits)
		fmt.Printf("  search time: %.1f ms wall, speedup %.2fx\n",
			float64(st.WallNs)/1e6, st.Speedup())
		if sch.WarmStart && st.Decisions > 0 {
			fmt.Printf("  warm start: %d seeded decisions, seed held %d, avg nodes-to-best %.1f\n",
				st.WarmDecisions, st.WarmSeedHeld,
				float64(st.NodesToBest)/float64(st.Decisions))
		}
		if sch.SLO > 0 && st.Decisions > 0 {
			fmt.Printf("  slo %v: avg effective L %.0f\n",
				sch.SLO, float64(st.EffectiveLimitSum)/float64(st.Decisions))
		}
	}
}

func effectiveLoad(m *workload.Month, target float64) float64 {
	if target > 0 {
		return target
	}
	return m.AchievedLoad
}

func printGrid(g metrics.ClassGrid) {
	fmt.Printf("\navg wait (h) by actual runtime x requested nodes:\n%12s", "")
	for _, n := range g.NodeClasses {
		fmt.Printf("%10s", n.String())
	}
	fmt.Println()
	for t := range g.RuntimeClasses {
		fmt.Printf("%12s", g.RuntimeClasses[t].String())
		for n := range g.NodeClasses {
			if g.Count[t][n] == 0 {
				fmt.Printf("%10s", "-")
			} else {
				fmt.Printf("%10.2f", g.AvgWaitH[t][n])
			}
		}
		fmt.Println()
	}
}
