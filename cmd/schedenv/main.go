// Command schedenv serves the simulator as a step/observe/act
// environment over a JSON-lines stdio protocol, so external optimizers
// (RL agents, black-box search, other languages) can drive scheduling
// decisions against the exact simulator the native policies run on.
//
// Usage:
//
//	schedenv -month 7/03 -load 0.9
//
// The driver writes a hello line, then answers each request line with
// exactly one response line:
//
//	→ {"type":"reset"}
//	← {"type":"observe","reward":0,"observation":{...}}
//	→ {"type":"act","action":{"kind":"policy","policy":"DDS/lxf/dynB"}}
//	← {"type":"observe","reward":-12.5,"observation":{...}}
//	...
//	← {"type":"done","total_reward":...,"summary":{...}}
//	→ {"type":"close"}
//
// Actions: {"kind":"start","start":[qpos,...]} starts the listed queue
// positions now; {"kind":"order","order":[...]} submits a full queue
// permutation (placed greedily, earliest fit per job, jobs landing at
// now start); {"kind":"policy","policy":"NAME"} delegates the decision
// to any built-in policy — including meta(...) portfolios. Rewards are
// negated plan scores under the paper's uniform objective, so higher
// is better and the episode total tracks the schedule's weighted cost.
package main

import (
	"flag"
	"fmt"
	"os"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/env"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func main() {
	var (
		month     = flag.String("month", "6/03", "month label (6/03 .. 3/04)")
		nodeLimit = flag.Int("L", 1000, "search node limit for policies resolved by \"policy\" actions")
		workers   = flag.Int("workers", 1, "parallel search workers for resolved search policies")
		warm      = flag.Bool("warm", false, "warm-start resolved search policies")
		load      = flag.Float64("load", 0, "target offered load (0 = original)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor")
		requested = flag.Bool("requested", false, "schedulers and observations use requested runtimes (R* = R)")
	)
	flag.Parse()

	if err := serve(*month, *seed, *scale, *load, *requested, *nodeLimit, *workers, *warm); err != nil {
		fmt.Fprintln(os.Stderr, "schedenv:", err)
		os.Exit(1)
	}
}

func serve(month string, seed uint64, scale, load float64, requested bool, nodeLimit, workers int, warm bool) error {
	cfg, err := serveConfig(month, seed, scale, load, requested, nodeLimit, workers, warm)
	if err != nil {
		return err
	}
	return env.Serve(cfg, os.Stdin, os.Stdout)
}

// serveConfig wires the workload suite and the policy resolver into the
// driver config (split from serve so tests can run the protocol over
// in-memory pipes).
func serveConfig(month string, seed uint64, scale, load float64, requested bool, nodeLimit, workers int, warm bool) (env.ServeConfig, error) {
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	opts := workload.SimOptions{TargetLoad: load, UseRequested: requested}
	// Probe once so a bad month label fails before the hello line.
	if _, _, err := suite.Input(month, opts); err != nil {
		return env.ServeConfig{}, err
	}
	cfg := env.ServeConfig{
		Label: fmt.Sprintf("schedenv %s", month),
		NewInput: func() (sim.Input, error) {
			in, _, err := suite.Input(month, opts)
			return in, err
		},
		Resolve: func(name string) (sim.Policy, error) {
			pol, err := schedsearch.ParsePolicy(name, nodeLimit)
			if err != nil {
				return nil, err
			}
			if sch, ok := pol.(*core.Scheduler); ok {
				sch.Workers = workers
				sch.WarmStart = warm
			}
			if mp, ok := pol.(*schedsearch.MetaScheduler); ok {
				mp.SetSearchOptions(workers, warm)
			}
			return pol, nil
		},
	}
	return cfg, nil
}
