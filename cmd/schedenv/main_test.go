package main

import (
	"bufio"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"schedsearch"
	"schedsearch/internal/env"
	"schedsearch/internal/metrics"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// TestServeStepsMonthEndToEnd drives the stdio protocol over in-memory
// pipes: hello, reset, then "policy" actions until done, for one full
// suite month. The done summary must match a native sim.Run of the same
// policy on the same workload exactly — the wire layer adds no drift.
func TestServeStepsMonthEndToEnd(t *testing.T) {
	const (
		month = "7/03"
		spec  = "DDS/lxf/dynB"
		seed  = 6
		scale = 0.025
		load  = 0.95
	)
	cfg, err := serveConfig(month, seed, scale, load, false, 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}

	cr, sw := io.Pipe() // server → client
	sr, cw := io.Pipe() // client → server
	serveErr := make(chan error, 1)
	go func() {
		err := env.Serve(cfg, sr, sw)
		sw.Close()
		serveErr <- err
	}()

	enc := json.NewEncoder(cw)
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	readLine := func(into interface{}) {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("server closed the stream early: %v", sc.Err())
		}
		if err := json.Unmarshal(sc.Bytes(), into); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
	}

	var hello env.Hello
	readLine(&hello)
	if hello.Type != "hello" || hello.SchemaVersion != env.SchemaVersion {
		t.Fatalf("bad hello: %+v", hello)
	}
	if hello.Capacity <= 0 || hello.Jobs <= 0 {
		t.Fatalf("hello missing workload shape: %+v", hello)
	}

	if err := enc.Encode(env.Request{Type: "reset"}); err != nil {
		t.Fatal(err)
	}
	var done env.DoneMsg
	steps := 0
	for {
		var raw struct {
			Type string `json:"type"`
		}
		var line json.RawMessage
		readLine(&line)
		if err := json.Unmarshal(line, &raw); err != nil {
			t.Fatal(err)
		}
		switch raw.Type {
		case "observe":
			var obs env.ObserveMsg
			if err := json.Unmarshal(line, &obs); err != nil {
				t.Fatal(err)
			}
			if len(obs.Observation.Queue) == 0 {
				t.Fatalf("step %d: observation with empty queue", steps)
			}
			steps++
			if err := enc.Encode(env.Request{
				Type:   "act",
				Action: env.Action{Kind: "policy", Policy: spec},
			}); err != nil {
				t.Fatal(err)
			}
		case "done":
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
		case "error":
			var em env.ErrorMsg
			_ = json.Unmarshal(line, &em)
			t.Fatalf("step %d: server error: %s", steps, em.Error)
		default:
			t.Fatalf("unexpected response type %q", raw.Type)
		}
		if done.Type == "done" {
			break
		}
	}
	if err := enc.Encode(env.Request{Type: "close"}); err != nil {
		t.Fatal(err)
	}
	cw.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	if done.Decisions != steps {
		t.Errorf("done reports %d decisions, client acted %d times", done.Decisions, steps)
	}
	if done.Jobs != hello.Jobs {
		t.Errorf("done reports %d jobs, hello announced %d", done.Jobs, hello.Jobs)
	}
	if done.TotalReward >= 0 {
		t.Errorf("total reward %v, want negative cost", done.TotalReward)
	}

	// The wire summary must match a native run of the same policy on the
	// same workload bit for bit.
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: load})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := schedsearch.ParsePolicy(spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	native := metrics.Summarize(res)
	// The env reports its episode label, not the delegated policy's name;
	// every measured quantity must still match bit for bit.
	native.Policy = done.Summary.Policy
	if !reflect.DeepEqual(done.Summary, native) {
		t.Errorf("wire summary diverges from native run:\nwire   %+v\nnative %+v", done.Summary, native)
	}
	if res.Decisions != done.Decisions {
		t.Errorf("native run made %d decisions, wire reported %d", res.Decisions, done.Decisions)
	}
}

// TestServeRejectsBadRequests: protocol errors get an error line and
// the session survives them.
func TestServeRejectsBadRequests(t *testing.T) {
	cfg, err := serveConfig("7/03", 6, 0.01, 0.5, false, 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	cr, sw := io.Pipe()
	sr, cw := io.Pipe()
	serveErr := make(chan error, 1)
	go func() {
		err := env.Serve(cfg, sr, sw)
		sw.Close()
		serveErr <- err
	}()
	enc := json.NewEncoder(cw)
	sc := bufio.NewScanner(cr)
	readLine := func(into interface{}) {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("server closed the stream early: %v", sc.Err())
		}
		if err := json.Unmarshal(sc.Bytes(), into); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
	}

	var hello env.Hello
	readLine(&hello)

	var em env.ErrorMsg
	// act before reset
	enc.Encode(env.Request{Type: "act", Action: env.Action{Kind: "start"}})
	readLine(&em)
	if em.Type != "error" {
		t.Fatalf("act before reset answered %+v", em)
	}
	// unknown request type
	enc.Encode(env.Request{Type: "bogus"})
	readLine(&em)
	if em.Type != "error" {
		t.Fatalf("bogus request answered %+v", em)
	}
	// session still alive: reset works
	enc.Encode(env.Request{Type: "reset"})
	var obs env.ObserveMsg
	readLine(&obs)
	if obs.Type != "observe" {
		t.Fatalf("reset after errors answered %+v", obs)
	}
	// invalid action: rejected without consuming the decision
	enc.Encode(env.Request{Type: "act", Action: env.Action{Kind: "start", Start: []int{9999}}})
	readLine(&em)
	if em.Type != "error" {
		t.Fatalf("out-of-range start answered %+v", em)
	}
	// the same decision is still pending and accepts a valid action
	enc.Encode(env.Request{Type: "act", Action: env.Action{Kind: "policy", Policy: "FCFS-backfill"}})
	var next struct {
		Type string `json:"type"`
	}
	readLine(&next)
	if next.Type != "observe" && next.Type != "done" {
		t.Fatalf("valid action after rejection answered type %q", next.Type)
	}

	enc.Encode(env.Request{Type: "close"})
	cw.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
