package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"schedsearch/internal/federation"
)

// spawnShardProcs launches n schedd shard child processes on loopback
// ports (fanout mode): each child re-executes this binary with the
// pass-through policy flags in baseArgs plus its own near-even slice of
// capacity, and — when dur.path is set — its own journal at
// <path>.shard-N with the supervisor's group-commit and compaction
// settings. The children's listen addresses are read from their
// parseable "listening on HOST:PORT" start-up lines; base URLs are
// returned in shard order once every child is accepting.
//
// Leftover non-empty shard journals are rotated to <path>.shard-N.old
// first, matching the in-process federated start-up: the front-end
// assigns job IDs from 1 on every boot, so resuming a child over an old
// run's events would collide IDs across incarnations.
//
// On a partial boot failure every already-started child is killed and
// reaped before the error returns.
func spawnShardProcs(n, capacity int, baseArgs []string, dur durOptions) (urls []string, procs []*exec.Cmd, err error) {
	caps, err := federation.PartitionCapacity(capacity, n)
	if err != nil {
		return nil, nil, err
	}
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			for _, c := range procs {
				_ = c.Process.Kill()
				_ = c.Wait()
			}
		}
	}()
	rotated := 0
	for i := 0; i < n; i++ {
		args := append([]string(nil), baseArgs...)
		args = append(args, "-addr", "127.0.0.1:0", "-capacity", strconv.Itoa(caps[i]))
		if dur.path != "" {
			spath := fmt.Sprintf("%s.shard-%d", dur.path, i)
			if st, serr := os.Stat(spath); serr == nil && st.Size() > 0 {
				if rerr := os.Rename(spath, spath+".old"); rerr != nil {
					return nil, nil, fmt.Errorf("rotate shard journal %s: %w", spath, rerr)
				}
				rotated++
			}
			args = append(args,
				"-journal", spath,
				"-group-commit", strconv.Itoa(dur.group),
				"-compact-every", strconv.Itoa(dur.compactEvery))
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdout, perr := cmd.StdoutPipe()
		if perr != nil {
			err = perr
			return nil, nil, err
		}
		if err = cmd.Start(); err != nil {
			return nil, nil, err
		}
		procs = append(procs, cmd)
		br := bufio.NewReader(stdout)
		line, rerr := br.ReadString('\n')
		if rerr != nil {
			err = fmt.Errorf("shard %d: reading its listen line: %w", i, rerr)
			return nil, nil, err
		}
		k := strings.LastIndex(line, "listening on ")
		if k < 0 {
			err = fmt.Errorf("shard %d: unexpected start-up line %q", i, line)
			return nil, nil, err
		}
		urls = append(urls, "http://"+strings.TrimSpace(line[k+len("listening on "):]))
		// Keep the child's stdout drained (it prints final metrics JSON
		// on exit) so it never blocks on a full pipe.
		go io.Copy(io.Discard, br)
		fmt.Fprintf(os.Stderr, "schedd: shard %d/%d: %d nodes at %s\n", i, n, caps[i], urls[i])
	}
	if rotated > 0 {
		fmt.Fprintf(os.Stderr, "schedd: rotated %d non-empty shard journals to %s.shard-N.old (fanout start-up does not resume them)\n",
			rotated, dur.path)
	}
	return urls, procs, nil
}
