package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"schedsearch/internal/federation"
)

// spawnShardProcs launches n schedd shard child processes on loopback
// ports (fanout mode): each child re-executes this binary with the
// pass-through policy flags in baseArgs plus its own near-even slice of
// capacity, and — when dur.path is set — its own journal at
// <path>.shard-N with the supervisor's group-commit and compaction
// settings. The children's listen addresses are read from their
// parseable "listening on HOST:PORT" start-up lines; base URLs are
// returned in shard order once every child is accepting.
//
// Leftover non-empty shard journals are rotated to <path>.shard-N.old
// first, matching the in-process federated start-up: the front-end
// assigns job IDs from 1 on every boot, so resuming a child over an old
// run's events would collide IDs across incarnations.
//
// On a partial boot failure every already-started child is killed and
// reaped before the error returns.
func spawnShardProcs(n, capacity int, baseArgs []string, dur durOptions) (urls []string, procs []*exec.Cmd, err error) {
	caps, err := federation.PartitionCapacity(capacity, n)
	if err != nil {
		return nil, nil, err
	}
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			for _, c := range procs {
				_ = c.Process.Kill()
				_ = c.Wait()
			}
		}
	}()
	rotated := 0
	for i := 0; i < n; i++ {
		args := append([]string(nil), baseArgs...)
		args = append(args, "-addr", "127.0.0.1:0", "-capacity", strconv.Itoa(caps[i]))
		if dur.path != "" {
			spath := fmt.Sprintf("%s.shard-%d", dur.path, i)
			if st, serr := os.Stat(spath); serr == nil && st.Size() > 0 {
				if rerr := os.Rename(spath, spath+".old"); rerr != nil {
					return nil, nil, fmt.Errorf("rotate shard journal %s: %w", spath, rerr)
				}
				rotated++
			}
			args = append(args,
				"-journal", spath,
				"-group-commit", strconv.Itoa(dur.group),
				"-compact-every", strconv.Itoa(dur.compactEvery))
		}
		cmd := exec.Command(self, args...)
		// Children do not inherit the supervisor's stderr: N processes
		// interleaving raw bytes on one descriptor shreds log lines.
		// Each child's stderr is forwarded line-by-line through the
		// supervisor's structured logger, tagged with the shard index.
		stderr, perr := cmd.StderrPipe()
		if perr != nil {
			err = perr
			return nil, nil, err
		}
		stdout, perr := cmd.StdoutPipe()
		if perr != nil {
			err = perr
			return nil, nil, err
		}
		if err = cmd.Start(); err != nil {
			return nil, nil, err
		}
		go forwardShardStderr(i, stderr)
		procs = append(procs, cmd)
		br := bufio.NewReader(stdout)
		line, rerr := br.ReadString('\n')
		if rerr != nil {
			err = fmt.Errorf("shard %d: reading its listen line: %w", i, rerr)
			return nil, nil, err
		}
		k := strings.LastIndex(line, "listening on ")
		if k < 0 {
			err = fmt.Errorf("shard %d: unexpected start-up line %q", i, line)
			return nil, nil, err
		}
		urls = append(urls, "http://"+strings.TrimSpace(line[k+len("listening on "):]))
		// Keep the child's stdout drained (it prints final metrics JSON
		// on exit) so it never blocks on a full pipe.
		go io.Copy(io.Discard, br)
		logger.Info("spawned fanout shard", "shard", i, "shards", n, "nodes", caps[i], "url", urls[i])
	}
	if rotated > 0 {
		logger.Warn("rotated non-empty shard journals (fanout start-up does not resume them)",
			"count", rotated, "to", dur.path+".shard-N.old")
	}
	return urls, procs, nil
}

// forwardShardStderr relays one fanout child's stderr through the
// supervisor's logger, one record per line, tagged with the child's
// shard index. The child already emits structured slog text lines; the
// forward keeps them whole (no interleaving mid-line with siblings)
// and attributes them. The goroutine exits on the pipe's EOF when the
// child does.
func forwardShardStderr(shard int, r io.Reader) {
	lg := logger.With("shard", shard)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := strings.TrimRight(sc.Text(), " \t\r"); line != "" {
			lg.Info(line)
		}
	}
}
