// Command schedd is the online scheduling daemon: it serves the
// paper's policies (backfill baselines and the search schedulers)
// against a live clock, with jobs submitted over an HTTP/JSON API.
//
// Serving mode (default):
//
//	schedd -policy DDS/lxf/dynB -L 1000 -addr :8080
//
// submits go to POST /v1/jobs, state is at GET /v1/jobs/{id},
// GET /v1/queue, GET /v1/machine and GET /v1/metrics, and
// POST /v1/drain stops admission, lets the machine empty, and shuts
// the daemon down. -speedup N runs the engine clock N× faster than
// wall time (useful for demos: hours of schedule in seconds).
//
// Replay mode:
//
//	schedd -virtual -month 7/03 -policy DDS/lxf/dynB
//	schedd -virtual -swf trace.swf.gz -policy LXF-backfill
//
// feeds a generated month or an SWF trace through the engine on a
// deterministic virtual clock (as fast as the hardware allows; -speedup
// has no effect in this mode) and prints the final metrics as JSON —
// the same schema GET /v1/metrics serves, with the same measurement
// window as the offline simulator, so the summary is directly
// comparable with `schedsim -json`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		policyArg = flag.String("policy", "DDS/lxf/dynB", "scheduling policy name (see ParsePolicy)")
		nodeLimit = flag.Int("L", 1000, "search node limit per decision")
		workers   = flag.Int("workers", 1, "parallel search workers for search policies (0 or 1 sequential, -1 one per CPU)")
		capacity  = flag.Int("capacity", workload.Capacity, "machine size in nodes")
		addr      = flag.String("addr", ":8080", "HTTP listen address (serving mode)")
		requested = flag.Bool("requested", false, "policies plan with requested runtimes (R* = R)")
		speedup   = flag.Float64("speedup", 1, "engine seconds per wall second")
		virtual   = flag.Bool("virtual", false, "replay a workload on a virtual clock instead of serving")
		swfIn     = flag.String("swf", "", "replay this SWF trace file (plain or .gz)")
		month     = flag.String("month", "7/03", "generated month to replay (6/03 .. 3/04)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor for generated months")
		load      = flag.Float64("load", 0, "target offered load for generated months (0 = original)")
	)
	flag.Parse()

	pol, err := schedsearch.ParsePolicy(*policyArg, *nodeLimit)
	if err != nil {
		fatal(err)
	}
	if sch, ok := pol.(*core.Scheduler); ok {
		sch.Workers = *workers
	}
	if *virtual || *swfIn != "" {
		if err := replay(pol, *swfIn, *month, *seed, *scale, *load, *capacity, *requested); err != nil {
			fatal(err)
		}
		return
	}
	if err := serve(pol, *addr, *capacity, *requested, *speedup); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedd:", err)
	os.Exit(1)
}

// serve runs the daemon: a real-clock engine behind the HTTP API.
// POST /v1/drain (or SIGINT/SIGTERM) triggers a graceful shutdown once
// the machine has emptied.
func serve(pol schedsearch.Policy, addr string, capacity int, requested bool, speedup float64) error {
	e, err := engine.New(engine.Config{
		Capacity:     capacity,
		Policy:       pol,
		Clock:        engine.NewRealClock(speedup),
		UseRequested: requested,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{}
	httpSrv.Handler = server.New(e, func() {
		// Drained: stop accepting connections and let main return.
		_ = httpSrv.Shutdown(context.Background())
	})

	// SIGINT/SIGTERM drain like POST /v1/drain does.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		_ = e.Drain(context.Background())
		_ = httpSrv.Shutdown(context.Background())
	}()

	// The test harness and shell scripts parse this line for the port.
	fmt.Printf("schedd: policy %s on %d nodes, listening on %s\n",
		pol.Name(), capacity, ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := e.Err(); err != nil {
		return err
	}
	return printMetrics(e)
}

// replay feeds a workload through the engine on the deterministic
// virtual clock (as fast as the hardware allows) and prints the final
// metrics. Each job is delivered by a clock timer at its submit time,
// exactly like the engine's differential tests.
func replay(pol schedsearch.Policy, swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool) error {
	input, err := replayInput(swfIn, month, seed, scale, load, capacity, requested)
	if err != nil {
		return err
	}

	vc := engine.NewVirtualClock()
	e, err := engine.New(engine.Config{
		Capacity:     input.Capacity,
		Policy:       pol,
		Clock:        vc,
		UseRequested: input.UseRequested,
		Measured: func(id int) bool {
			if input.Measured == nil {
				return true
			}
			return input.Measured[id]
		},
		MeasureStart: input.MeasureStart,
		MeasureEnd:   input.MeasureEnd,
	})
	if err != nil {
		return err
	}
	var submitErr error
	var once sync.Once
	for _, j := range input.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				once.Do(func() { submitErr = err })
			}
		})
	}
	vc.Run()
	if submitErr != nil {
		return submitErr
	}
	if err := e.Err(); err != nil {
		return err
	}
	return printMetrics(e)
}

// replayInput assembles the jobs to replay: an SWF trace, or a
// generated month with warm-up/cool-down margins and measurement
// flags, exactly as the offline simulator would see it.
func replayInput(swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool) (sim.Input, error) {
	if swfIn != "" {
		jobs, header, err := trace.ReadSWFFile(swfIn)
		if err != nil {
			return sim.Input{}, err
		}
		if len(jobs) == 0 {
			return sim.Input{}, fmt.Errorf("%s: no usable jobs", swfIn)
		}
		sort.Sort(job.BySubmit(jobs))
		if capacity <= 0 {
			capacity = header.MaxNodes
		}
		for _, j := range jobs {
			if j.Nodes > capacity {
				capacity = j.Nodes
			}
		}
		return sim.Input{Capacity: capacity, Jobs: jobs, UseRequested: requested}, nil
	}
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	input, _, err := suite.Input(month, workload.SimOptions{TargetLoad: load, UseRequested: requested})
	if err != nil {
		return sim.Input{}, err
	}
	return input, nil
}

func printMetrics(e *engine.Engine) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Metrics())
}
