// Command schedd is the online scheduling daemon: it serves the
// paper's policies (backfill baselines and the search schedulers)
// against a live clock, with jobs submitted over an HTTP/JSON API.
//
// Serving mode (default):
//
//	schedd -policy DDS/lxf/dynB -L 1000 -addr :8080
//
// submits go to POST /v1/jobs (a JSON object, or a JSON array for a
// batched submit with per-item results), state is at GET /v1/jobs/{id},
// GET /v1/queue, GET /v1/machine and GET /v1/metrics, liveness and
// readiness at GET /v1/healthz and GET /v1/readyz, and
// POST /v1/drain stops admission, lets the machine empty, and shuts
// the daemon down. -speedup N runs the engine clock N× faster than
// wall time (useful for demos: hours of schedule in seconds).
// GET /v1/metrics also serves the Prometheus text exposition format to
// clients whose Accept header prefers text/plain.
//
// Durability and ingest (serving mode):
//
//	schedd -journal sched.journal -group-commit 64 -compact-every 4096
//
// -journal appends every committed scheduling event to a JSON-lines
// file, fsynced every -group-commit appends (1 = every commit);
// -compact-every N folds the file into a checkpoint snapshot once the
// tail exceeds N events, bounding recovery cost by live state rather
// than history. On start, a non-empty journal is recovered: the engine
// rebuilds its committed state and the clock resumes at the last
// journaled instant (any torn tail from the crash is truncated before
// appending resumes). With -shards > 1 each shard appends to
// <path>.shard-N (write-only durability; crash recovery from shard
// journals is not wired into start-up, so non-empty shard journals are
// rotated to <path>.shard-N.old on start rather than appended to).
//
// Submissions are admitted through a bounded async accept queue:
// -ingest-pending caps accepted-but-uncommitted items (a saturated
// queue answers 503 with Retry-After; 0 disables the queue and admits
// synchronously), -ingest-batch caps how many items the committer
// folds into one journal fsync, and -quota-rate/-quota-burst put a
// per-user token bucket in front of admission (429 per item when
// exhausted; rate 0 disables quotas).
//
// Federation mode:
//
//	schedd -shards 4 -placement least-loaded -policy DDS/lxf/dynB
//
// -shards N > 1 partitions the machine across N engine shards behind a
// routing front-end (internal/federation): each shard runs the full
// policy over its own node partition, -placement picks the routing
// policy (least-loaded, best-fit or hash-by-user), -rebalance T
// migrates still-queued jobs from overloaded to underloaded shards
// every T seconds (0 disables), and -gossip T polls every shard's load
// on a period (with -steal letting idle shards take queued work from
// the most loaded). GET /v1/federation reports the per-shard
// breakdown. Jobs wider than every shard's partition are rejected
// (serving) or skipped with a note (replay). Works in both serving and
// replay modes.
//
// Distributed federation (serving mode):
//
//	schedd -fanout 16 -capacity 512 -policy DDS/lxf/dynB -journal sched.journal
//	schedd -join http://10.0.0.1:8080,http://10.0.0.2:8080
//
// -fanout N spawns N schedd shard child processes on loopback ports —
// each owns its near-even slice of -capacity, runs the forwarded
// policy flags, and (with -journal) appends to its own
// <path>.shard-N journal it recovers independently — then serves as
// the federation front-end over them. -join instead fronts shard
// daemons that are already running (anywhere reachable), discovering
// their capacities over the wire. Either way the shards are driven
// through per-call timeouts with bounded retries; an unreachable
// shard's work is routed around it (GET /v1/readyz answers 503 with
// the per-shard breakdown while any shard is dark), certain-failure
// submissions are rerouted, and wire-uncertain migration steps are
// parked and reconciled on the gossip tick instead of being retried
// blindly. A drain (POST /v1/drain or SIGINT/SIGTERM) propagates to
// every shard; fanout children exit with the supervisor.
//
// Replay mode:
//
//	schedd -virtual -month 7/03 -policy DDS/lxf/dynB
//	schedd -virtual -swf trace.swf.gz -policy LXF-backfill
//
// feeds a generated month or an SWF trace through the engine on a
// deterministic virtual clock (as fast as the hardware allows; -speedup
// has no effect in this mode) and prints the final metrics as JSON —
// the same schema GET /v1/metrics serves, with the same measurement
// window as the offline simulator, so the summary is directly
// comparable with `schedsim -json`.
//
// Observability:
//
//	schedd -policy DDS/lxf/dynB -trace-out trace.json -debug-addr 127.0.0.1:6060
//
// -trace-out enables cross-process tracing — every submission is
// assigned a trace context (or continues the one in an incoming
// X-Schedsearch-Trace header), carried through routing, shard wire
// calls and the decide that starts the job — and writes the collected
// spans on exit as Chrome trace-event JSON, loadable directly in
// Perfetto or chrome://tracing. -debug-addr serves net/http/pprof on a
// separate listener. -flight N keeps a ring of the last N scheduling
// decisions (policy, queue depth, search effort, incumbent-cost
// trajectory, commit summary) served at GET /v1/debug/decisions; the
// recorder is inert — it reads only state the search already produced,
// and never perturbs a schedule. Tracing and the flight recorder are
// both bit-identical-off-vs-on by construction (the engine
// differential tests pin this).
//
// Chaos mode (development):
//
//	schedd -virtual -month 7/03 -policy DDS/lxf/dynB -chaos 3
//
// -chaos SEED wraps the policy in a seeded fault injector (panics and
// artificial latency at seed-dependent decision points — the engine
// recovers each panic on its FCFS fallback) and attaches the
// schedule-invariant oracle; the run fails if any invariant is
// violated, and reports the verdict on stderr. Works in both serving
// and replay modes, federated or not (a federated run is verified by
// the global record sweep instead of the live per-engine oracle,
// because migrations look like re-submissions to a single engine).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"schedsearch"
	"schedsearch/internal/chaos"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/oracle"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		policyArg = flag.String("policy", "DDS/lxf/dynB", "scheduling policy name (see ParsePolicy)")
		nodeLimit = flag.Int("L", 1000, "search node limit per decision")
		workers   = flag.Int("workers", 1, "parallel search workers for search policies (0 or 1 sequential, -1 one per CPU)")
		warm      = flag.Bool("warm", false, "warm-start the search from the previous decision's best ordering (search policies)")
		slo       = flag.Duration("slo", 0, "per-decision latency SLO; adapts the node budget to the observed ns/node rate (0 = fixed -L)")
		capacity  = flag.Int("capacity", workload.Capacity, "machine size in nodes")
		addr      = flag.String("addr", ":8080", "HTTP listen address (serving mode)")
		requested = flag.Bool("requested", false, "policies plan with requested runtimes (R* = R)")
		speedup   = flag.Float64("speedup", 1, "engine seconds per wall second")
		virtual   = flag.Bool("virtual", false, "replay a workload on a virtual clock instead of serving")
		swfIn     = flag.String("swf", "", "replay this SWF trace file (plain or .gz)")
		month     = flag.String("month", "7/03", "generated month to replay (6/03 .. 3/04)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor for generated months")
		load      = flag.Float64("load", 0, "target offered load for generated months (0 = original)")
		chaosSeed = flag.Uint64("chaos", 0, "dev fault injection: wrap the policy in a seeded panic/latency injector and verify the run against the schedule oracle (0 = off)")
		shards    = flag.Int("shards", 1, "engine shards; >1 federates the machine behind a routing front-end")
		placement = flag.String("placement", "least-loaded", "federation placement policy: least-loaded, best-fit or hash-by-user")
		rebalance = flag.Int64("rebalance", 60, "federation rebalance period in engine seconds (0 = off)")
		gossip    = flag.Int64("gossip", 60, "federation load-gossip period in engine seconds (0 = off); remote federations also reconcile parked wire-uncertain migration steps on this tick")
		steal     = flag.Bool("steal", false, "enable the gossip pass's work-stealing step: a shard with free nodes and an empty queue takes queued work from the most loaded shard")
		join      = flag.String("join", "", "serve as a federation front-end over these already-running out-of-process shard daemons (comma-separated base URLs, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080)")
		fanout    = flag.Int("fanout", 0, "spawn N schedd shard child processes on loopback ports and front them (serving mode; each child owns its slice of -capacity and, with -journal, its own <path>.shard-N journal)")

		journalPath  = flag.String("journal", "", "append committed events to this journal file and recover from it on start (serving mode; federation appends to <path>.shard-N)")
		groupCommit  = flag.Int("group-commit", 64, "journal appends per fsync (1 = fsync every commit)")
		compactEvery = flag.Int("compact-every", 4096, "fold the journal into a checkpoint once the tail exceeds N events (0 = never compact)")
		ingPending   = flag.Int("ingest-pending", 4096, "accept-queue bound on accepted-but-uncommitted submissions; saturated submits get 503 + Retry-After (0 = admit synchronously, no queue)")
		ingBatch     = flag.Int("ingest-batch", 64, "max submissions the ingest committer folds into one commit group (= one journal fsync)")
		quotaRate    = flag.Float64("quota-rate", 0, "per-user admission tokens per engine second (0 = no quotas)")
		quotaBurst   = flag.Float64("quota-burst", 32, "per-user token bucket size")

		traceOut    = flag.String("trace-out", "", "enable cross-process tracing and write the spans as Chrome trace-event JSON (Perfetto-loadable) to this file on exit")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this extra listen address (empty = off)")
		flightSize  = flag.Int("flight", 256, "decision flight-recorder ring size, served at GET /v1/debug/decisions (0 = off)")
		cachedLoads = flag.Bool("cached-loads", false, "federation placement probes the gossip-refreshed load cache instead of issuing a live per-shard load call on every submission (loads up to -gossip old)")
	)
	flag.Parse()

	// Validate once up front, then hand shards a factory: every shard
	// (and every post-crash rebuild) gets its own policy instance.
	if _, err := schedsearch.ParsePolicy(*policyArg, *nodeLimit); err != nil {
		fatal(err)
	}
	chaosOn := *chaosSeed > 0
	mkPolicy := func(int) sim.Policy {
		pol, err := schedsearch.ParsePolicy(*policyArg, *nodeLimit)
		if err != nil {
			panic(err) // validated above
		}
		if sch, ok := pol.(*core.Scheduler); ok {
			sch.Workers = *workers
			sch.WarmStart = *warm
			sch.SLO = *slo
		}
		if mp, ok := pol.(*schedsearch.MetaScheduler); ok {
			mp.SetSearchOptions(*workers, *warm)
		}
		if chaosOn {
			// The seed varies the injection cadence, so different seeds
			// exercise different decision points; the oracle rides along
			// and the run fails loudly on any invariant violation.
			pol = &chaos.FlakyPolicy{
				Inner:        pol,
				PanicEvery:   int(5 + *chaosSeed%7),
				LatencyEvery: int(2 + *chaosSeed%3),
				Latency:      100 * time.Microsecond,
			}
		}
		return pol
	}
	if chaosOn {
		logger.Info("chaos mode on: injecting policy panics and latency", "seed", *chaosSeed)
	}
	fed := fedOptions{
		shards:    *shards,
		rebalance: job.Duration(*rebalance),
		gossip:    job.Duration(*gossip),
		steal:     *steal,
		fanout:    *fanout,
	}
	if *join != "" {
		for _, u := range strings.Split(*join, ",") {
			if u = strings.TrimSpace(u); u != "" {
				fed.join = append(fed.join, u)
			}
		}
	}
	remote := len(fed.join) > 0 || fed.fanout > 0
	if remote {
		if len(fed.join) > 0 && fed.fanout > 0 {
			fatal(errors.New("-join and -fanout are mutually exclusive"))
		}
		if fed.fanout == 1 || fed.fanout < 0 {
			fatal(fmt.Errorf("-fanout %d: want at least 2 shard processes", fed.fanout))
		}
		if *shards > 1 {
			fatal(errors.New("-shards federates in process; drop it when using -join or -fanout"))
		}
		if *virtual || *swfIn != "" {
			fatal(errors.New("-join/-fanout are serving-mode only (replay has no remote shards)"))
		}
		if chaosOn {
			fatal(errors.New("-chaos is not supported on a remote federation front-end"))
		}
		// Children re-run this binary with the policy flags forwarded;
		// they admit synchronously (no accept queue) — batching belongs
		// to the front-end, and migration steps bypass ingest anyway.
		fed.childArgs = []string{
			"-policy", *policyArg,
			"-L", strconv.Itoa(*nodeLimit),
			"-workers", strconv.Itoa(*workers),
			fmt.Sprintf("-warm=%v", *warm),
			"-slo", slo.String(),
			fmt.Sprintf("-requested=%v", *requested),
			"-speedup", strconv.FormatFloat(*speedup, 'g', -1, 64),
			"-ingest-pending", "0",
		}
	}
	if *shards > 1 || remote {
		place, err := federation.ParsePlacement(*placement)
		if err != nil {
			fatal(err)
		}
		fed.placement = place
	}

	obsO := obsOptions{traceOut: *traceOut, debugAddr: *debugAddr, flight: *flightSize, cachedLoads: *cachedLoads}
	if *virtual || *swfIn != "" {
		if err := replay(mkPolicy, *swfIn, *month, *seed, *scale, *load, *capacity, *requested, chaosOn, fed, obsO); err != nil {
			fatal(err)
		}
		return
	}
	dur := durOptions{path: *journalPath, group: *groupCommit, compactEvery: *compactEvery}
	ing := ingOptions{pending: *ingPending, batch: *ingBatch, quotaRate: *quotaRate, quotaBurst: *quotaBurst}
	if err := serve(mkPolicy, *addr, *capacity, *requested, *speedup, chaosOn, fed, dur, ing, obsO); err != nil {
		fatal(err)
	}
}

// logger is the daemon's structured stderr logger; fanout children get
// their own (their stderr is forwarded line-by-line through the
// supervisor's, tagged with the shard index).
var logger = obs.NewLogger(os.Stderr, "schedd")

// obsOptions carry the observability flags. A non-empty traceOut turns
// tracing on; flight <= 0 turns the decision flight recorder off.
type obsOptions struct {
	traceOut    string
	debugAddr   string
	flight      int
	cachedLoads bool
}

// tracer builds the run's tracer, or nil when tracing is off.
func (o obsOptions) tracer(now func() time.Time) *obs.Tracer {
	if o.traceOut == "" {
		return nil
	}
	return obs.NewTracer(obs.TracerOptions{Now: now})
}

// recorder builds the run's flight recorder, or nil when off.
func (o obsOptions) recorder() *obs.FlightRecorder {
	if o.flight <= 0 {
		return nil
	}
	return obs.NewFlightRecorder(o.flight)
}

// writeTraceOut exports the collected spans as Chrome trace-event JSON;
// a no-op unless -trace-out was given.
func (o obsOptions) writeTraceOut(tr *obs.Tracer) error {
	if o.traceOut == "" {
		return nil
	}
	f, err := os.Create(o.traceOut)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logger.Info("wrote trace", "path", o.traceOut, "spans", len(tr.Spans()), "dropped", tr.Dropped())
	return nil
}

// serveDebug mounts net/http/pprof on its own listener, so profiling
// never shares a port (or a mux) with the scheduling API.
func (o obsOptions) serveDebug() (io.Closer, error) {
	if o.debugAddr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", o.debugAddr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	logger.Info("pprof debug server listening", "addr", ln.Addr().String())
	return ln, nil
}

// durOptions carry the journal flags; an empty path disables the
// journal.
type durOptions struct {
	path         string
	group        int
	compactEvery int
}

// ingOptions carry the accept-queue flags; pending <= 0 admits
// synchronously without a queue.
type ingOptions struct {
	pending    int
	batch      int
	quotaRate  float64
	quotaBurst float64
}

// fedOptions carry the federation flags; shards <= 1 with neither join
// URLs nor a fanout count means a bare engine.
type fedOptions struct {
	shards    int
	placement federation.Placement
	rebalance job.Duration
	gossip    job.Duration
	steal     bool
	// join lists out-of-process shard base URLs to front; fanout spawns
	// that many shard child processes instead. Either makes serve build
	// a remote federation (RemoteShard clients behind the router).
	join      []string
	fanout    int
	childArgs []string // pass-through flags for fanout children
}

// remote reports whether the federation is out of process.
func (f fedOptions) remote() bool { return len(f.join) > 0 || f.fanout > 0 }

// backend is what both run modes drive: a bare *engine.Engine or a
// *federation.Router.
type backend interface {
	server.Backend
	Records() []sim.Record
	Err() error
	Now() job.Time
}

// verify renders the chaos-mode verdict after a run. A bare engine is
// checked by its live oracle plus the record sweep; a federation by the
// global cross-shard sweep (partition geometry, shard-local node IDs,
// conservation across migrations).
func verify(orc *oracle.Oracle, bk backend, router *federation.Router) error {
	if router != nil {
		shardRecs := make([][]sim.Record, router.NumShards())
		for i := range shardRecs {
			shardRecs[i] = router.ShardRecords(i)
		}
		if err := oracle.CheckFederation(bk.Metrics().Capacity, router.ShardCapacities(), nil, shardRecs); err != nil {
			return err
		}
		fm := router.Federation()
		logger.Info("federation oracle verdict: clean",
			"jobs", len(bk.Records()), "shards", fm.Shards, "migrations", fm.Migrations)
		return nil
	}
	if orc == nil {
		return nil
	}
	if err := orc.Final(); err != nil {
		return err
	}
	if err := oracle.CheckRecords(bk.Metrics().Capacity, nil, bk.Records()); err != nil {
		return err
	}
	logger.Info("chaos oracle verdict: clean",
		"jobs", len(bk.Records()), "recovered_panics", bk.Metrics().Engine.PolicyPanics)
	return nil
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

// serve runs the daemon: a real-clock engine (or federation) behind the
// HTTP API. POST /v1/drain (or SIGINT/SIGTERM) triggers a graceful
// shutdown once the machine has emptied.
func serve(mkPolicy func(int) sim.Policy, addr string, capacity int, requested bool,
	speedup float64, chaosOn bool, fed fedOptions, dur durOptions, ing ingOptions, obsO obsOptions) error {
	// A non-empty single-engine journal is recovered before the clock
	// starts: the rebuilt engine resumes at the last journaled instant,
	// so re-armed completion timers fire in the future, never the past.
	var recovered *engine.Checkpoint
	start := job.Time(0)
	if dur.path != "" && fed.shards <= 1 && !fed.remote() {
		if st, err := os.Stat(dur.path); err == nil && st.Size() > 0 {
			// RecoverCheckpoint truncates any torn tail, so the O_APPEND
			// handle opened below starts on a clean line boundary.
			cp, err := engine.RecoverCheckpoint(dur.path)
			if err != nil {
				return err
			}
			recovered = &cp
			if cp.Base != nil && cp.Base.At > start {
				start = cp.Base.At
			}
			for _, ev := range cp.Events {
				if ev.At > start {
					start = ev.At
				}
			}
		}
	}
	clock := engine.NewRealClockAt(start, speedup)
	tr := obsO.tracer(nil)
	flight := obsO.recorder()

	var (
		bk       backend
		router   *federation.Router
		orc      *oracle.Oracle
		journals []*engine.FileJournal
		children []*exec.Cmd
	)
	defer func() {
		// Fanout children normally exit on their own after the drain the
		// router forwards to them; this reap catches error paths (and is
		// a no-op kill on an already-exited child).
		for _, c := range children {
			_ = c.Process.Kill()
			_ = c.Wait()
		}
	}()
	if fed.remote() {
		urls := fed.join
		if fed.fanout > 0 {
			var err error
			urls, children, err = spawnShardProcs(fed.fanout, capacity, fed.childArgs, dur)
			if err != nil {
				return err
			}
		} else if dur.path != "" {
			logger.Warn("-journal is ignored with -join (each shard daemon owns its journal)")
		}
		shardClients := make([]engine.Shard, len(urls))
		for i, u := range urls {
			shardClients[i] = federation.NewRemoteShard(u, federation.RemoteShardOptions{
				Logger: logger,
				Tracer: tr,
			})
		}
		r, err := federation.NewWithShards(federation.Config{
			Clock:          clock,
			Placement:      fed.placement,
			RebalanceEvery: fed.rebalance,
			GossipEvery:    fed.gossip,
			WorkStealing:   fed.steal,
			CachedLoads:    obsO.cachedLoads,
			Tracer:         tr,
			Logger:         obs.NewLogger(os.Stderr, "router"),
		}, shardClients)
		if err != nil {
			return err
		}
		bk, router = r, r
	} else if fed.shards > 1 {
		fcfg := federation.Config{
			Capacity:       capacity,
			Shards:         fed.shards,
			Policy:         mkPolicy,
			Placement:      fed.placement,
			Clock:          clock,
			UseRequested:   requested,
			RebalanceEvery: fed.rebalance,
			GossipEvery:    fed.gossip,
			WorkStealing:   fed.steal,
			CachedLoads:    obsO.cachedLoads,
			Tracer:         tr,
			Flight:         flight,
			Logger:         obs.NewLogger(os.Stderr, "router"),
		}
		if dur.path != "" {
			// Shard journals are opened up front so factory calls (initial
			// construction and any crash-rebuild) cannot fail; a rebuild of
			// shard i keeps appending to the same open file. Federated
			// start-up does not recover from shard journals, so a leftover
			// non-empty file is rotated aside rather than appended to —
			// interleaving a fresh run (restarted clock, reused job IDs)
			// after the old run's events would corrupt both.
			journals = make([]*engine.FileJournal, fed.shards)
			rotated := 0
			for i := range journals {
				spath := fmt.Sprintf("%s.shard-%d", dur.path, i)
				if st, err := os.Stat(spath); err == nil && st.Size() > 0 {
					if err := os.Rename(spath, spath+".old"); err != nil {
						return fmt.Errorf("rotate shard journal %s: %w", spath, err)
					}
					rotated++
				}
				fj, err := engine.OpenFileJournal(spath, dur.group)
				if err != nil {
					return err
				}
				journals[i] = fj
			}
			if rotated > 0 {
				logger.Warn("rotated non-empty shard journals (federated start-up does not recover them)",
					"count", rotated, "to", dur.path+".shard-N.old")
			}
			fcfg.Journal = func(shard int) engine.JournalSink { return journals[shard] }
			fcfg.CompactEvery = dur.compactEvery
			logger.Info("journaling shards (write-only; start-up recovery is single-engine)",
				"shards", fed.shards, "path", dur.path+".shard-N")
		}
		r, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		bk, router = r, r
	} else {
		if chaosOn {
			orc = oracle.New(capacity)
		}
		cfg := engine.Config{
			Capacity:     capacity,
			Policy:       mkPolicy(0),
			Clock:        clock,
			UseRequested: requested,
			Flight:       flight,
			Tracer:       tr,
		}
		if orc != nil {
			// Assigning a nil *Oracle directly would store a typed-nil
			// Observer the ledger's nil check cannot see.
			cfg.Observer = orc
		}
		if dur.path != "" {
			fj, err := engine.OpenFileJournal(dur.path, dur.group)
			if err != nil {
				return err
			}
			journals = append(journals, fj)
			cfg.Journal = fj
			cfg.CompactEvery = dur.compactEvery
		}
		var e *engine.Engine
		var err error
		if recovered != nil {
			e, err = engine.Rebuild(cfg, *recovered)
			if err != nil {
				return fmt.Errorf("recover %s: %w", dur.path, err)
			}
			base := 0
			if recovered.Base != nil {
				base = len(recovered.Base.Done) + len(recovered.Base.Running) + len(recovered.Base.Waiting)
			}
			logger.Info("recovered journal", "path", dur.path,
				"base_jobs", base, "tail_events", len(recovered.Events), "resumed_t", int64(start))
		} else {
			e, err = engine.New(cfg)
			if err != nil {
				return err
			}
		}
		bk = e
	}

	// The accept queue sits between the HTTP layer and the backend:
	// batched submits commit through it in arrival order, one journal
	// fsync per committer group.
	var q *ingest.Queue
	var opts []server.Option
	if ing.pending > 0 {
		qcfg := ingest.Config{
			Backend:    bk,
			MaxPending: ing.pending,
			MaxBatch:   ing.batch,
		}
		if ing.quotaRate > 0 {
			qcfg.Quotas = ingest.NewQuotas(ing.quotaRate, ing.quotaBurst, bk.Now)
		}
		var err error
		q, err = ingest.NewQueue(qcfg)
		if err != nil {
			return err
		}
		opts = append(opts, server.WithIngest(q))
	}
	if flight != nil && !fed.remote() {
		// A remote front-end has no in-process engines to record; each
		// shard daemon serves its own /v1/debug/decisions.
		opts = append(opts, server.WithFlight(flight))
	}
	if tr != nil {
		shard := 0
		if router != nil {
			shard = -1 // the router's lane in the trace timeline
		}
		opts = append(opts, server.WithTracer(tr, shard))
	}
	dbg, err := obsO.serveDebug()
	if err != nil {
		return err
	}
	if dbg != nil {
		defer dbg.Close()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{}
	httpSrv.Handler = server.New(bk, func() {
		// Drained: stop accepting connections and let main return.
		_ = httpSrv.Shutdown(context.Background())
	}, opts...)

	// SIGINT/SIGTERM drain like POST /v1/drain does: accepted batches
	// commit first, then admission stops and the machine empties.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		if q != nil {
			q.Flush()
		}
		_ = bk.Drain(context.Background())
		_ = httpSrv.Shutdown(context.Background())
	}()

	// The test harness and shell scripts parse this line for the port.
	if router != nil {
		kind := ""
		if fed.remote() {
			kind = " remote"
		}
		fmt.Printf("schedd: policy %s on %d nodes (%d%s shards, %s placement), listening on %s\n",
			bk.Metrics().Policy, bk.Metrics().Capacity, router.NumShards(), kind, fed.placement.Name(), ln.Addr())
	} else {
		fmt.Printf("schedd: policy %s on %d nodes, listening on %s\n",
			bk.Metrics().Policy, capacity, ln.Addr())
	}
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if q != nil {
		q.Close()
	}
	for _, fj := range journals {
		if err := fj.Close(); err != nil {
			return err
		}
	}
	if err := bk.Err(); err != nil {
		return err
	}
	// A drained fanout child exits by itself once its machine empties;
	// reap them here so their journals are closed before we report. A
	// child that never got the drain (its wire was down during
	// shutdown) is killed after a grace period rather than hanging the
	// supervisor.
	for _, c := range children {
		c := c
		done := make(chan struct{})
		go func() { _ = c.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = c.Process.Kill()
			<-done
		}
	}
	children = nil
	if chaosOn {
		if err := verify(orc, bk, router); err != nil {
			return err
		}
	}
	if err := obsO.writeTraceOut(tr); err != nil {
		return err
	}
	return printMetrics(bk, router)
}

// replay feeds a workload through the engine (or federation) on the
// deterministic virtual clock (as fast as the hardware allows) and
// prints the final metrics. Each job is delivered by a clock timer at
// its submit time, exactly like the engine's differential tests.
func replay(mkPolicy func(int) sim.Policy, swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool, chaosOn bool, fed fedOptions, obsO obsOptions) error {
	input, err := replayInput(swfIn, month, seed, scale, load, capacity, requested)
	if err != nil {
		return err
	}
	measured := func(id int) bool {
		if input.Measured == nil {
			return true
		}
		return input.Measured[id]
	}

	vc := engine.NewVirtualClock()
	// Replay span timestamps come from the virtual clock, so the trace
	// timeline reads in engine time (span durations are still wall).
	tr := obsO.tracer(func() time.Time { return time.Unix(int64(vc.Now()), 0) })
	flight := obsO.recorder()
	var (
		bk     backend
		router *federation.Router
		orc    *oracle.Oracle
	)
	if fed.shards > 1 {
		r, err := federation.New(federation.Config{
			Capacity:       input.Capacity,
			Shards:         fed.shards,
			Policy:         mkPolicy,
			Placement:      fed.placement,
			Clock:          vc,
			UseRequested:   input.UseRequested,
			Measured:       measured,
			MeasureStart:   input.MeasureStart,
			MeasureEnd:     input.MeasureEnd,
			RebalanceEvery: fed.rebalance,
			GossipEvery:    fed.gossip,
			WorkStealing:   fed.steal,
			CachedLoads:    obsO.cachedLoads,
			Tracer:         tr,
			Flight:         flight,
			Logger:         obs.NewLogger(os.Stderr, "router"),
		})
		if err != nil {
			return err
		}
		bk, router = r, r
	} else {
		if chaosOn {
			orc = oracle.New(input.Capacity)
		}
		cfg := engine.Config{
			Capacity:     input.Capacity,
			Policy:       mkPolicy(0),
			Clock:        vc,
			UseRequested: input.UseRequested,
			Measured:     measured,
			MeasureStart: input.MeasureStart,
			MeasureEnd:   input.MeasureEnd,
			Flight:       flight,
			Tracer:       tr,
		}
		if orc != nil {
			cfg.Observer = orc
		}
		e, err := engine.New(cfg)
		if err != nil {
			return err
		}
		bk = e
	}
	// The replay loop is the front door, so it mints the traces a live
	// run's HTTP submit handler would (the router then adds route spans;
	// the engine adds decide spans).
	frontShard := 0
	if router != nil {
		frontShard = -1
	}

	var submitErr error
	var once sync.Once
	var skipped int
	for _, j := range input.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			var tc obs.TraceContext
			var t0 time.Time
			if tr != nil {
				tc = tr.Mint()
				tr.Bind(j.ID, tc)
				t0 = tr.Now()
			}
			err := bk.SubmitJob(j)
			if err == nil {
				if tr != nil {
					tr.Record("submit", tc, j.ID, frontShard, t0, tr.Now().Sub(t0))
				}
				return
			}
			if errors.Is(err, federation.ErrTooWide) {
				// A partitioned machine cannot hold the trace's widest
				// jobs; skip them rather than abort the replay.
				skipped++
				return
			}
			once.Do(func() { submitErr = err })
		})
	}
	vc.Run()
	if skipped > 0 {
		logger.Warn("skipped jobs wider than every shard partition", "count", skipped)
	}
	if submitErr != nil {
		return submitErr
	}
	if err := bk.Err(); err != nil {
		return err
	}
	if chaosOn {
		if err := verify(orc, bk, router); err != nil {
			return err
		}
	}
	if err := obsO.writeTraceOut(tr); err != nil {
		return err
	}
	return printMetrics(bk, router)
}

// replayInput assembles the jobs to replay: an SWF trace, or a
// generated month with warm-up/cool-down margins and measurement
// flags, exactly as the offline simulator would see it.
func replayInput(swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool) (sim.Input, error) {
	if swfIn != "" {
		jobs, header, err := trace.ReadSWFFile(swfIn)
		if err != nil {
			return sim.Input{}, err
		}
		if len(jobs) == 0 {
			return sim.Input{}, fmt.Errorf("%s: no usable jobs", swfIn)
		}
		sort.Sort(job.BySubmit(jobs))
		if capacity <= 0 {
			capacity = header.MaxNodes
		}
		for _, j := range jobs {
			if j.Nodes > capacity {
				capacity = j.Nodes
			}
		}
		return sim.Input{Capacity: capacity, Jobs: jobs, UseRequested: requested}, nil
	}
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	input, _, err := suite.Input(month, workload.SimOptions{TargetLoad: load, UseRequested: requested})
	if err != nil {
		return sim.Input{}, err
	}
	return input, nil
}

// printMetrics emits the final whole-machine metrics on stdout; a
// federated run appends the per-shard federation report.
func printMetrics(bk backend, router *federation.Router) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bk.Metrics()); err != nil {
		return err
	}
	if router != nil {
		return enc.Encode(router.Federation())
	}
	return nil
}
