// Command schedd is the online scheduling daemon: it serves the
// paper's policies (backfill baselines and the search schedulers)
// against a live clock, with jobs submitted over an HTTP/JSON API.
//
// Serving mode (default):
//
//	schedd -policy DDS/lxf/dynB -L 1000 -addr :8080
//
// submits go to POST /v1/jobs, state is at GET /v1/jobs/{id},
// GET /v1/queue, GET /v1/machine and GET /v1/metrics, and
// POST /v1/drain stops admission, lets the machine empty, and shuts
// the daemon down. -speedup N runs the engine clock N× faster than
// wall time (useful for demos: hours of schedule in seconds).
//
// Replay mode:
//
//	schedd -virtual -month 7/03 -policy DDS/lxf/dynB
//	schedd -virtual -swf trace.swf.gz -policy LXF-backfill
//
// feeds a generated month or an SWF trace through the engine on a
// deterministic virtual clock (as fast as the hardware allows; -speedup
// has no effect in this mode) and prints the final metrics as JSON —
// the same schema GET /v1/metrics serves, with the same measurement
// window as the offline simulator, so the summary is directly
// comparable with `schedsim -json`.
//
// Chaos mode (development):
//
//	schedd -virtual -month 7/03 -policy DDS/lxf/dynB -chaos 3
//
// -chaos SEED wraps the policy in a seeded fault injector (panics and
// artificial latency at seed-dependent decision points — the engine
// recovers each panic on its FCFS fallback) and attaches the
// schedule-invariant oracle; the run fails if any invariant is
// violated, and reports the verdict on stderr. Works in both serving
// and replay modes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"schedsearch"
	"schedsearch/internal/chaos"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		policyArg = flag.String("policy", "DDS/lxf/dynB", "scheduling policy name (see ParsePolicy)")
		nodeLimit = flag.Int("L", 1000, "search node limit per decision")
		workers   = flag.Int("workers", 1, "parallel search workers for search policies (0 or 1 sequential, -1 one per CPU)")
		capacity  = flag.Int("capacity", workload.Capacity, "machine size in nodes")
		addr      = flag.String("addr", ":8080", "HTTP listen address (serving mode)")
		requested = flag.Bool("requested", false, "policies plan with requested runtimes (R* = R)")
		speedup   = flag.Float64("speedup", 1, "engine seconds per wall second")
		virtual   = flag.Bool("virtual", false, "replay a workload on a virtual clock instead of serving")
		swfIn     = flag.String("swf", "", "replay this SWF trace file (plain or .gz)")
		month     = flag.String("month", "7/03", "generated month to replay (6/03 .. 3/04)")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		scale     = flag.Float64("scale", 1, "job-count/duration scale factor for generated months")
		load      = flag.Float64("load", 0, "target offered load for generated months (0 = original)")
		chaosSeed = flag.Uint64("chaos", 0, "dev fault injection: wrap the policy in a seeded panic/latency injector and verify the run against the schedule oracle (0 = off)")
	)
	flag.Parse()

	pol, err := schedsearch.ParsePolicy(*policyArg, *nodeLimit)
	if err != nil {
		fatal(err)
	}
	if sch, ok := pol.(*core.Scheduler); ok {
		sch.Workers = *workers
	}
	chaosOn := *chaosSeed > 0
	if chaosOn {
		// The seed varies the injection cadence, so different seeds
		// exercise different decision points; the oracle rides along and
		// the run fails loudly on any schedule-invariant violation.
		pol = &chaos.FlakyPolicy{
			Inner:        pol,
			PanicEvery:   int(5 + *chaosSeed%7),
			LatencyEvery: int(2 + *chaosSeed%3),
			Latency:      100 * time.Microsecond,
		}
		fmt.Fprintf(os.Stderr, "schedd: chaos mode on (seed %d): injecting policy panics and latency\n", *chaosSeed)
	}
	if *virtual || *swfIn != "" {
		if err := replay(pol, *swfIn, *month, *seed, *scale, *load, *capacity, *requested, chaosOn); err != nil {
			fatal(err)
		}
		return
	}
	if err := serve(pol, *addr, *capacity, *requested, *speedup, chaosOn); err != nil {
		fatal(err)
	}
}

// verifyOracle renders the chaos-mode verdict after a run: the live
// oracle's end-of-run check plus the record sweep.
func verifyOracle(orc *oracle.Oracle, e *engine.Engine) error {
	if orc == nil {
		return nil
	}
	if err := orc.Final(); err != nil {
		return err
	}
	if err := oracle.CheckRecords(e.Metrics().Capacity, nil, e.Records()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "schedd: chaos oracle verdict: clean (%d jobs, %d recovered panics)\n",
		len(e.Records()), e.Metrics().Engine.PolicyPanics)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedd:", err)
	os.Exit(1)
}

// serve runs the daemon: a real-clock engine behind the HTTP API.
// POST /v1/drain (or SIGINT/SIGTERM) triggers a graceful shutdown once
// the machine has emptied.
func serve(pol sim.Policy, addr string, capacity int, requested bool, speedup float64, chaosOn bool) error {
	var orc *oracle.Oracle
	if chaosOn {
		orc = oracle.New(capacity)
	}
	cfg := engine.Config{
		Capacity:     capacity,
		Policy:       pol,
		Clock:        engine.NewRealClock(speedup),
		UseRequested: requested,
	}
	if orc != nil {
		// Assigning a nil *Oracle directly would store a typed-nil
		// Observer the ledger's nil check cannot see.
		cfg.Observer = orc
	}
	e, err := engine.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{}
	httpSrv.Handler = server.New(e, func() {
		// Drained: stop accepting connections and let main return.
		_ = httpSrv.Shutdown(context.Background())
	})

	// SIGINT/SIGTERM drain like POST /v1/drain does.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		_ = e.Drain(context.Background())
		_ = httpSrv.Shutdown(context.Background())
	}()

	// The test harness and shell scripts parse this line for the port.
	fmt.Printf("schedd: policy %s on %d nodes, listening on %s\n",
		pol.Name(), capacity, ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := e.Err(); err != nil {
		return err
	}
	if err := verifyOracle(orc, e); err != nil {
		return err
	}
	return printMetrics(e)
}

// replay feeds a workload through the engine on the deterministic
// virtual clock (as fast as the hardware allows) and prints the final
// metrics. Each job is delivered by a clock timer at its submit time,
// exactly like the engine's differential tests.
func replay(pol sim.Policy, swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool, chaosOn bool) error {
	input, err := replayInput(swfIn, month, seed, scale, load, capacity, requested)
	if err != nil {
		return err
	}
	var orc *oracle.Oracle
	if chaosOn {
		orc = oracle.New(input.Capacity)
	}

	vc := engine.NewVirtualClock()
	cfg := engine.Config{
		Capacity:     input.Capacity,
		Policy:       pol,
		Clock:        vc,
		UseRequested: input.UseRequested,
		Measured: func(id int) bool {
			if input.Measured == nil {
				return true
			}
			return input.Measured[id]
		},
		MeasureStart: input.MeasureStart,
		MeasureEnd:   input.MeasureEnd,
	}
	if orc != nil {
		cfg.Observer = orc
	}
	e, err := engine.New(cfg)
	if err != nil {
		return err
	}
	var submitErr error
	var once sync.Once
	for _, j := range input.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				once.Do(func() { submitErr = err })
			}
		})
	}
	vc.Run()
	if submitErr != nil {
		return submitErr
	}
	if err := e.Err(); err != nil {
		return err
	}
	if err := verifyOracle(orc, e); err != nil {
		return err
	}
	return printMetrics(e)
}

// replayInput assembles the jobs to replay: an SWF trace, or a
// generated month with warm-up/cool-down margins and measurement
// flags, exactly as the offline simulator would see it.
func replayInput(swfIn, month string, seed uint64, scale, load float64,
	capacity int, requested bool) (sim.Input, error) {
	if swfIn != "" {
		jobs, header, err := trace.ReadSWFFile(swfIn)
		if err != nil {
			return sim.Input{}, err
		}
		if len(jobs) == 0 {
			return sim.Input{}, fmt.Errorf("%s: no usable jobs", swfIn)
		}
		sort.Sort(job.BySubmit(jobs))
		if capacity <= 0 {
			capacity = header.MaxNodes
		}
		for _, j := range jobs {
			if j.Nodes > capacity {
				capacity = j.Nodes
			}
		}
		return sim.Input{Capacity: capacity, Jobs: jobs, UseRequested: requested}, nil
	}
	suite := workload.NewSuite(workload.Config{Seed: seed, JobScale: scale})
	input, _, err := suite.Input(month, workload.SimOptions{TargetLoad: load, UseRequested: requested})
	if err != nil {
		return sim.Input{}, err
	}
	return input, nil
}

func printMetrics(e *engine.Engine) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Metrics())
}
