package main

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/obs"
	"schedsearch/internal/server"
)

// newRemoteFederation boots one out-of-process-style shard per
// partition — a full engine behind its own HTTP server on a real TCP
// loopback listener — and fronts them with federation.RemoteShard
// clients, so every submission, load probe, migration step and record
// fetch crosses the wire as JSON. The shards share the bench's virtual
// clock: calls resolve synchronously inside timer callbacks, so the
// replay stays deterministic while the measured wall time includes the
// full HTTP serialization cost. stop tears the servers down.
//
// A non-nil tr is shared by the router, every shard server and every
// shard engine, so one trace follows a job across the wire:
// submit/route/probe on the router, admit on the receiving shard
// server (continued from the X-Schedsearch-Trace header), decide on
// the shard engine. cachedLoads switches placement probing to the
// rebalance-refreshed load cache (federation.Config.CachedLoads).
func newRemoteFederation(vc *engine.VirtualClock, capacity, shards, limit int, tr *obs.Tracer, cachedLoads bool) (*federation.Router, func(), error) {
	caps, err := federation.PartitionCapacity(capacity, shards)
	if err != nil {
		return nil, nil, err
	}
	var servers []*http.Server
	stop := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	clients := make([]engine.Shard, shards)
	for i := range clients {
		e, err := engine.New(engine.Config{
			Capacity:   caps[i],
			Policy:     core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), limit),
			Clock:      vc,
			Tracer:     tr,
			TraceShard: i,
		})
		if err != nil {
			stop()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("federation bench: shard %d listen: %w", i, err)
		}
		var srvOpts []server.Option
		if tr != nil {
			srvOpts = append(srvOpts, server.WithTracer(tr, i))
		}
		srv := &http.Server{Handler: server.New(e, nil, srvOpts...)}
		go srv.Serve(ln)
		servers = append(servers, srv)
		clients[i] = federation.NewRemoteShard("http://"+ln.Addr().String(), federation.RemoteShardOptions{
			Timeout: 30 * time.Second,
			Sleep:   func(time.Duration) {},
			Tracer:  tr,
		})
	}
	router, err := federation.NewWithShards(federation.Config{
		Clock:          vc,
		RebalanceEvery: 600,
		Tracer:         tr,
		CachedLoads:    cachedLoads,
	}, clients)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return router, stop, nil
}
