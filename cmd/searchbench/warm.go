package main

import (
	"fmt"
	"os"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/sim"
)

// Warm-start benchmark: replay deterministic suite months in a closed
// loop, the warm-started scheduler committing while a cold twin decides
// every snapshot. The run FAILS if the two ever commit different
// schedules — warm start is required to be a pure accounting win at
// equal effective budget — and the report records how many fewer nodes
// the warm search needed to have its best schedule in hand.

// warmResult is one (algorithm, month) cold-vs-warm comparison.
type warmResult struct {
	Algo      string `json:"algo"`
	Month     string `json:"month"`
	NodeLimit int    `json:"node_limit"`
	Decisions int    `json:"decisions"`
	// NodesToBest: cumulative nodes spent before the last incumbent
	// improvement, summed over decisions. The ratio is cold/warm — how
	// many times earlier the warm search holds its final schedule.
	ColdNodesToBest  int64   `json:"cold_nodes_to_best"`
	WarmNodesToBest  int64   `json:"warm_nodes_to_best"`
	NodesToBestRatio float64 `json:"nodes_to_best_ratio"`
	// Per-decision search wall time for each scheduler over the same
	// committed trajectory.
	ColdNsPerDecision int64 `json:"cold_ns_per_decision"`
	WarmNsPerDecision int64 `json:"warm_ns_per_decision"`
	// SeedHeldPct is the share of seeded decisions where no enumerated
	// schedule beat the carried seed (the plan survived the queue delta).
	SeedHeldPct float64 `json:"seed_held_pct"`
}

// warmMirror lets the warm scheduler commit while the cold twin shadows
// it, fataling on the first divergence.
type warmMirror struct {
	cold, warm *core.Scheduler
	month      string
	decisions  int
}

func (m *warmMirror) Name() string { return m.warm.Name() }

func (m *warmMirror) Decide(snap *sim.Snapshot) []int {
	m.decisions++
	coldStarts := append([]int(nil), m.cold.Decide(snap)...)
	warmStarts := m.warm.Decide(snap)
	diverged := len(coldStarts) != len(warmStarts)
	if !diverged {
		for i := range coldStarts {
			if coldStarts[i] != warmStarts[i] {
				diverged = true
				break
			}
		}
	}
	if diverged || m.cold.LastCost() != m.warm.LastCost() {
		fatal(fmt.Errorf("%s %s decision %d: warm commit diverged from cold (warm %v cost %v, cold %v cost %v)",
			m.warm.Name(), m.month, m.decisions,
			warmStarts, m.warm.LastCost(), coldStarts, m.cold.LastCost()))
	}
	return warmStarts
}

// runWarmBench replays each month once per algorithm and returns the
// cold-vs-warm rows for the report.
func runWarmBench(algos []core.Algorithm, months []string, limit int) []warmResult {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.05})
	var out []warmResult
	for _, algo := range algos {
		for _, month := range months {
			cold := core.New(algo, core.HeuristicLXF, core.DynamicBound(), limit)
			warm := core.New(algo, core.HeuristicLXF, core.DynamicBound(), limit)
			warm.WarmStart = true
			m := &warmMirror{cold: cold, warm: warm, month: month}
			if _, _, err := schedsearch.RunMonth(suite, month, schedsearch.SimOptions{TargetLoad: 0.95}, m); err != nil {
				fatal(err)
			}
			cs, ws := cold.SearchStats, warm.SearchStats
			if cs.Nodes != ws.Nodes || cs.Leaves != ws.Leaves {
				fatal(fmt.Errorf("%s %s: warm enumeration differs from cold (%d/%d vs %d/%d nodes/leaves)",
					algo, month, ws.Nodes, ws.Leaves, cs.Nodes, cs.Leaves))
			}
			r := warmResult{
				Algo:            algo.String(),
				Month:           month,
				NodeLimit:       limit,
				Decisions:       m.decisions,
				ColdNodesToBest: cs.NodesToBest,
				WarmNodesToBest: ws.NodesToBest,
			}
			if ws.NodesToBest > 0 {
				r.NodesToBestRatio = float64(cs.NodesToBest) / float64(ws.NodesToBest)
			} else if cs.NodesToBest > 0 {
				r.NodesToBestRatio = float64(cs.NodesToBest)
			} else {
				r.NodesToBestRatio = 1
			}
			if cs.Decisions > 0 {
				r.ColdNsPerDecision = cs.WallNs / int64(cs.Decisions)
			}
			if ws.Decisions > 0 {
				r.WarmNsPerDecision = ws.WallNs / int64(ws.Decisions)
			}
			if ws.WarmDecisions > 0 {
				r.SeedHeldPct = 100 * float64(ws.WarmSeedHeld) / float64(ws.WarmDecisions)
			}
			fmt.Fprintf(os.Stderr, "warm %s %s L=%d: nodes-to-best %d cold vs %d warm (%.2fx), seed held %.0f%%\n",
				r.Algo, month, limit, r.ColdNodesToBest, r.WarmNodesToBest,
				r.NodesToBestRatio, r.SeedHeldPct)
			out = append(out, r)
		}
	}
	return out
}
