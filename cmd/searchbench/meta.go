package main

import (
	"fmt"
	"os"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/sim"
)

// Meta-scheduling benchmark: replay the full deterministic suite once
// per fixed policy and once with the portfolio meta-scheduler over the
// same policies, and compare total weighted cost — the uniform
// scalarization w·(total wait seconds) + (total bounded slowdown) with
// w = core.DefaultExcessWeight, i.e. the plan-scorer objective realized
// ex post over the committed schedules. The report also accounts the
// portfolio's shadow-simulation overhead, so the cost of adaptivity is
// visible next to its benefit.
//
// The default portfolio holds the two search policies. Backfill arms
// are parseable portfolio members, but the plan scorer's greedy
// completion systematically flatters backfill-style plans (their
// committed starts ARE a greedy placement), so portfolios mixing
// backfill with search arms commit the backfill arm on myopically-
// plausible rounds and lose realized cost — measurable by passing
// -metaspecs "DDS/lxf/dynB,LDS/fcfs/dynB,FCFS-backfill".

// metaPolicyRow is one policy's ten-month aggregate.
type metaPolicyRow struct {
	Policy string `json:"policy"`
	// WeightedCost sums w·waitSeconds + boundedSlowdown over every
	// measured job of every month (lower is better).
	WeightedCost float64 `json:"weighted_cost"`
	TotalWaitH   float64 `json:"total_wait_h"`
	TotalBsld    float64 `json:"total_bounded_slowdown"`
	Jobs         int     `json:"jobs"`
}

// metaBenchResult is the report's "meta" section.
type metaBenchResult struct {
	Months      []string `json:"months"`
	NodeLimit   int      `json:"node_limit"`
	ShadowLimit int      `json:"shadow_limit"`
	Bandit      string   `json:"bandit"`

	Fixed     []metaPolicyRow `json:"fixed"`
	Portfolio metaPolicyRow   `json:"portfolio"`
	// BestFixed names the strongest fixed policy; the ratio is
	// portfolio cost over best fixed cost (≤ 1 means the portfolio
	// matched or beat every fixed policy).
	BestFixed            string  `json:"best_fixed"`
	PortfolioVsBestFixed float64 `json:"portfolio_vs_best_fixed"`

	// Shadow overhead and bandit activity, summed over the months.
	Decisions         int     `json:"decisions"`
	Switches          int     `json:"switches"`
	CumRegret         float64 `json:"cum_regret"`
	ShadowNodes       int64   `json:"shadow_nodes"`
	ShadowWallMs      float64 `json:"shadow_wall_ms"`
	IncumbentWallMs   float64 `json:"incumbent_wall_ms"`
	ShadowOverheadPct float64 `json:"shadow_overhead_pct"`
}

// addMonth folds one month's summary into the row.
func (r *metaPolicyRow) addMonth(sum schedsearch.Summary) {
	waitS := sum.AvgWaitH * 3600 * float64(sum.Jobs)
	bsld := sum.AvgBoundedSlowdown * float64(sum.Jobs)
	r.WeightedCost += core.DefaultExcessWeight*waitS + bsld
	r.TotalWaitH += sum.AvgWaitH * float64(sum.Jobs)
	r.TotalBsld += bsld
	r.Jobs += sum.Jobs
}

// runMetaBench measures every fixed spec and the portfolio over the
// months and returns the report section.
func runMetaBench(specs []string, months []string, limit int) metaBenchResult {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.05})
	opts := schedsearch.SimOptions{TargetLoad: 0.95}
	cfg := schedsearch.MetaConfig{Seed: 1}
	res := metaBenchResult{
		Months:      months,
		NodeLimit:   limit,
		ShadowLimit: cfg.EffectiveShadowLimit(),
		Bandit:      cfg.Kind.String(),
	}

	run := func(mkPolicy func() (sim.Policy, error), row *metaPolicyRow, collect func(sim.Policy)) {
		for _, month := range months {
			pol, err := mkPolicy()
			if err != nil {
				fatal(err)
			}
			sum, _, err := schedsearch.RunMonth(suite, month, opts, pol)
			if err != nil {
				fatal(fmt.Errorf("%s %s: %w", pol.Name(), month, err))
			}
			row.addMonth(sum)
			if collect != nil {
				collect(pol)
			}
		}
	}

	for _, spec := range specs {
		spec := spec
		row := metaPolicyRow{Policy: spec}
		run(func() (sim.Policy, error) { return schedsearch.ParsePolicy(spec, limit) }, &row, nil)
		fmt.Fprintf(os.Stderr, "meta fixed %-22s weighted cost %.3g (%d jobs)\n",
			spec, row.WeightedCost, row.Jobs)
		res.Fixed = append(res.Fixed, row)
	}

	portfolioSpec := "meta("
	for i, s := range specs {
		if i > 0 {
			portfolioSpec += ","
		}
		portfolioSpec += s
	}
	portfolioSpec += ")"
	res.Portfolio.Policy = portfolioSpec
	run(func() (sim.Policy, error) {
		return schedsearch.ParsePolicyMeta(portfolioSpec, limit, cfg)
	}, &res.Portfolio, func(pol sim.Policy) {
		st := pol.(*schedsearch.MetaScheduler).MetaStats()
		res.Decisions += st.Decisions
		res.Switches += st.Switches
		res.CumRegret += st.CumRegret
		res.ShadowNodes += st.ShadowNodes
		res.ShadowWallMs += float64(st.ShadowWallNs) / 1e6
		res.IncumbentWallMs += float64(st.IncumbentWallNs) / 1e6
	})
	if res.IncumbentWallMs > 0 {
		res.ShadowOverheadPct = 100 * res.ShadowWallMs / res.IncumbentWallMs
	}

	best := res.Fixed[0]
	for _, row := range res.Fixed[1:] {
		if row.WeightedCost < best.WeightedCost {
			best = row
		}
	}
	res.BestFixed = best.Policy
	if best.WeightedCost > 0 {
		res.PortfolioVsBestFixed = res.Portfolio.WeightedCost / best.WeightedCost
	}
	fmt.Fprintf(os.Stderr, "meta portfolio %-13s weighted cost %.3g — %.3fx best fixed (%s); %d switches, shadow overhead %.0f%%\n",
		portfolioSpec, res.Portfolio.WeightedCost, res.PortfolioVsBestFixed,
		res.BestFixed, res.Switches, res.ShadowOverheadPct)
	return res
}

// carryResult is one month of the CDDS carried-climbing-reference
// comparison: carry on vs off are different (both valid) schedules, so
// the rows report search effort and realized cost side by side rather
// than asserting equality.
type carryResult struct {
	Month     string `json:"month"`
	NodeLimit int    `json:"node_limit"`
	Decisions int    `json:"decisions"`
	// CarryDecisions counts decisions whose climb seeded from the
	// previous decision's best ordering instead of the heuristic.
	CarryDecisions int `json:"carry_decisions"`
	// NodesToBest sums, per variant, the nodes spent before the final
	// incumbent was found; the ratio is restart/carry.
	RestartNodesToBest int64   `json:"restart_nodes_to_best"`
	CarryNodesToBest   int64   `json:"carry_nodes_to_best"`
	NodesToBestRatio   float64 `json:"nodes_to_best_ratio"`
	// Realized weighted cost per variant (same scalarization as the
	// meta section), showing the carried reference does not degrade the
	// committed schedules.
	RestartWeightedCost float64 `json:"restart_weighted_cost"`
	CarryWeightedCost   float64 `json:"carry_weighted_cost"`
}

// runCarryBench replays each month with CDDS climbing from a restart
// vs. from the carried reference.
func runCarryBench(months []string, limit int) []carryResult {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.05})
	opts := schedsearch.SimOptions{TargetLoad: 0.95}
	var out []carryResult
	for _, month := range months {
		var stats [2]core.Stats
		var cost [2]float64
		for i, carry := range []bool{false, true} {
			sch := core.New(core.CDDS, core.HeuristicLXF, core.DynamicBound(), limit)
			sch.WarmStart = true
			sch.CarryClimb = carry
			sum, _, err := schedsearch.RunMonth(suite, month, opts, sch)
			if err != nil {
				fatal(fmt.Errorf("cdds carry %s: %w", month, err))
			}
			stats[i] = sch.SearchStats
			cost[i] = core.DefaultExcessWeight*sum.AvgWaitH*3600*float64(sum.Jobs) +
				sum.AvgBoundedSlowdown*float64(sum.Jobs)
		}
		r := carryResult{
			Month:               month,
			NodeLimit:           limit,
			Decisions:           stats[1].Decisions,
			CarryDecisions:      stats[1].CarryDecisions,
			RestartNodesToBest:  stats[0].NodesToBest,
			CarryNodesToBest:    stats[1].NodesToBest,
			RestartWeightedCost: cost[0],
			CarryWeightedCost:   cost[1],
		}
		if r.CarryNodesToBest > 0 {
			r.NodesToBestRatio = float64(r.RestartNodesToBest) / float64(r.CarryNodesToBest)
		} else if r.RestartNodesToBest > 0 {
			r.NodesToBestRatio = float64(r.RestartNodesToBest)
		} else {
			r.NodesToBestRatio = 1
		}
		fmt.Fprintf(os.Stderr, "cdds carry %s L=%d: nodes-to-best %d restart vs %d carry (%.2fx), %d/%d carried\n",
			month, limit, r.RestartNodesToBest, r.CarryNodesToBest, r.NodesToBestRatio,
			r.CarryDecisions, r.Decisions)
		out = append(out, r)
	}
	return out
}
