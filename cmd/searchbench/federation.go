package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"schedsearch/internal/benchmeta"
	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
)

// fedResult is one shard-count measurement of the federation bench.
type fedResult struct {
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
	Jobs      int    `json:"jobs"`
	// WallMs is the wall time of the whole virtual-clock replay; a
	// virtual clock runs as fast as the hardware schedules, so this is
	// pure scheduling cost (search + routing + bookkeeping).
	WallMs     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Decisions and the decide latencies aggregate across the shards
	// (latencies are wall time inside the engines' decision path).
	Decisions   int64   `json:"decisions"`
	AvgDecideMs float64 `json:"avg_decide_ms"`
	MaxDecideMs float64 `json:"max_decide_ms"`
	// RoutingNsPerJob is the router's placement cost per submission
	// (zero for the 1-shard baseline only if routing were free — it is
	// measured there too).
	RoutingNsPerJob int64 `json:"routing_ns_per_job"`
	Migrations      int64 `json:"migrations"`
	// SpeedupVs1Shard is the 1-shard wall time over this wall time.
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard"`
}

// fedReport is the BENCH_federation.json schema.
type fedReport struct {
	benchmeta.Meta
	Policy   string      `json:"policy"`
	Capacity int         `json:"capacity"`
	Results  []fedResult `json:"results"`
	// Remote repeats the sweep with every shard out of process: a full
	// engine behind its own HTTP server on a real TCP listener, driven
	// through federation.RemoteShard — the same workload and shard
	// counts, now paying the wire (JSON serialization, HTTP round
	// trips, remote load probes). SpeedupVs1Shard here is against the
	// remote 1-shard baseline, so the column isolates scaling from
	// wire overhead.
	Remote []fedResult `json:"remote,omitempty"`
	// CachedLoads is the before/after for gossip-cached placement
	// probing (federation.Config.CachedLoads), measured on the remote
	// sweep's largest shard count: the same replay with live
	// per-submission load probes (N HTTP round trips per submit) versus
	// the cache the rebalance/gossip passes refresh, compared by the
	// router's "route" span durations. Present only with -remote.
	CachedLoads *cachedLoadsNote `json:"cached_loads,omitempty"`
}

// cachedLoadsNote is the routing-cost evidence for the cached-loads
// placement option, from two traced replays of the identical workload.
type cachedLoadsNote struct {
	Shards int `json:"shards"`
	// LiveRouteNsPerJob / CachedRouteNsPerJob average the router's
	// "route" span (placement probe + pick + wire submit) per routed
	// job, without and with the load cache.
	LiveRouteNsPerJob   int64 `json:"live_route_span_ns_per_job"`
	CachedRouteNsPerJob int64 `json:"cached_route_span_ns_per_job"`
	// LiveProbeSpans / CachedProbeSpans count live per-shard load
	// probes issued from the submit path (cached runs only probe live
	// until the first rebalance/gossip pass fills the cache).
	LiveProbeSpans   int64   `json:"live_probe_spans"`
	CachedProbeSpans int64   `json:"cached_probe_spans"`
	RouteSpeedup     float64 `json:"route_speedup"`
}

// fedBenchJobs builds the deterministic synthetic workload for the
// federation bench: widths bounded by the narrowest partition of the
// largest shard count, bursty seeded-free arithmetic arrivals, mixed
// runtimes. Every shard count replays exactly these jobs.
func fedBenchJobs(n, maxWidth int) []job.Job {
	jobs := make([]job.Job, n)
	at := job.Time(0)
	for i := range jobs {
		if i%7 != 0 {
			// Six of seven jobs arrive in a burst with the previous one;
			// every seventh opens a gap, so queues stay contended.
			at += job.Time((i * 37) % 240)
		}
		rt := job.Duration(300 + (i*2311)%14400)
		jobs[i] = job.Job{
			ID:      i + 1,
			Submit:  at,
			Nodes:   1 + (i*13)%maxWidth,
			Runtime: rt,
			Request: rt + job.Duration((i*977)%3600),
			User:    i % 16,
		}
	}
	return jobs
}

// fedMeasure replays jobs through one pre-built router on vc and
// returns the measurement. label prefixes the stderr progress line;
// *baseWallMs is the sweep's 1-shard baseline (set on the first run).
func fedMeasure(vc *engine.VirtualClock, router *federation.Router, shards int,
	jobs []job.Job, capacity int, baseWallMs *float64, label string) (fedResult, error) {
	for _, j := range jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := router.SubmitJob(j); err != nil {
				fatal(fmt.Errorf("%s bench: submit job %d on %d shards: %w", label, j.ID, shards, err))
			}
		})
	}
	t0 := time.Now()
	vc.Run()
	wall := time.Since(t0)
	if err := router.Err(); err != nil {
		return fedResult{}, err
	}
	if got := len(router.Records()); got != len(jobs) {
		return fedResult{}, fmt.Errorf("%s bench: %d shards completed %d of %d jobs", label, shards, got, len(jobs))
	}
	// The bench doubles as a correctness probe: every measured run
	// must pass the global federation sweep (for the remote sweep the
	// shard states cross the wire to get here).
	shardRecs := make([][]sim.Record, router.NumShards())
	for i := range shardRecs {
		shardRecs[i] = router.ShardRecords(i)
	}
	if err := oracle.CheckFederation(capacity, router.ShardCapacities(), nil, shardRecs); err != nil {
		return fedResult{}, fmt.Errorf("%s bench: %d shards: %w", label, shards, err)
	}

	fm := router.Federation()
	r := fedResult{
		Shards:      shards,
		Placement:   fm.Placement,
		Jobs:        len(jobs),
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		Decisions:   fm.Global.Engine.Decisions,
		AvgDecideMs: fm.Global.Engine.AvgDecideMs,
		MaxDecideMs: fm.Global.Engine.MaxDecideMs,
		Migrations:  fm.Migrations,
	}
	if wall > 0 {
		r.JobsPerSec = float64(len(jobs)) / wall.Seconds()
	}
	if fm.RoutingDecisions > 0 {
		r.RoutingNsPerJob = fm.RoutingNs / fm.RoutingDecisions
	}
	if shards == 1 || *baseWallMs == 0 {
		*baseWallMs = r.WallMs
	}
	if r.WallMs > 0 {
		r.SpeedupVs1Shard = *baseWallMs / r.WallMs
	}
	fmt.Fprintf(os.Stderr, "%s shards=%d: %.0f ms wall, %.0f jobs/s, avg decide %.3f ms, %d migrations\n",
		label, shards, r.WallMs, r.JobsPerSec, r.AvgDecideMs, r.Migrations)
	return r, nil
}

// remoteTracedOnce boots a traced out-of-process federation, replays
// jobs through it once, and returns the measurement with the run's
// tracer (span stats, trace export). Span timestamps read in virtual
// time; span durations are real wall.
func remoteTracedOnce(jobs []job.Job, capacity, shards, limit int, cachedLoads bool, label string) (fedResult, *obs.Tracer, error) {
	vc := engine.NewVirtualClock()
	tr := obs.NewTracer(obs.TracerOptions{
		Seed: 1,
		Now:  func() time.Time { return time.Unix(int64(vc.Now()), 0) },
	})
	router, stopShards, err := newRemoteFederation(vc, capacity, shards, limit, tr, cachedLoads)
	if err != nil {
		return fedResult{}, nil, err
	}
	var base float64
	r, err := fedMeasure(vc, router, shards, jobs, capacity, &base, label)
	stopShards()
	return r, tr, err
}

// runFederationBench replays the same synthetic workload through a
// 1-shard, 2-shard, ... federation and reports decision latency and
// throughput per shard count into outPath (BENCH_federation.json).
// With remote the sweep is repeated against out-of-process-style
// shards (engine + HTTP server on a real TCP listener behind a
// RemoteShard client) into the report's "remote" section.
func runFederationBench(outPath string, shardCounts []int, jobsN, limit, capacity int, remote bool, traceOut string) error {
	maxShards := 1
	for _, s := range shardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	// Bound widths by the narrowest partition at the largest shard
	// count so every configuration schedules the identical job set.
	minCaps, err := federation.PartitionCapacity(capacity, maxShards)
	if err != nil {
		return err
	}
	jobs := fedBenchJobs(jobsN, minCaps[len(minCaps)-1])

	rep := fedReport{
		Meta:     benchmeta.Collect("searchbench -federation"),
		Capacity: capacity,
	}
	var baseWallMs float64
	for _, shards := range shardCounts {
		vc := engine.NewVirtualClock()
		router, err := federation.New(federation.Config{
			Capacity: capacity,
			Shards:   shards,
			Clock:    vc,
			Policy: func(int) sim.Policy {
				return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), limit)
			},
			RebalanceEvery: 600,
		})
		if err != nil {
			return err
		}
		rep.Policy = router.Metrics().Policy
		r, err := fedMeasure(vc, router, shards, jobs, capacity, &baseWallMs, "federation")
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, r)
	}

	if remote {
		var remoteBaseMs float64
		for _, shards := range shardCounts {
			vc := engine.NewVirtualClock()
			router, stopShards, err := newRemoteFederation(vc, capacity, shards, limit, nil, false)
			if err != nil {
				return err
			}
			r, err := fedMeasure(vc, router, shards, jobs, capacity, &remoteBaseMs, "federation-remote")
			stopShards()
			if err != nil {
				return err
			}
			rep.Remote = append(rep.Remote, r)
		}

		// Cached-loads before/after at the largest shard count, both
		// runs traced so the router's own route/probe spans measure the
		// placement cost (tracing is schedule-inert, so the cached run
		// differs from the live run only by the load-cache option).
		_, liveTr, err := remoteTracedOnce(jobs, capacity, maxShards, limit, false, "federation-remote live-loads")
		if err != nil {
			return err
		}
		_, cachedTr, err := remoteTracedOnce(jobs, capacity, maxShards, limit, true, "federation-remote cached-loads")
		if err != nil {
			return err
		}
		note := &cachedLoadsNote{Shards: maxShards}
		liveStats, cachedStats := liveTr.Stats(), cachedTr.Stats()
		if st := liveStats["route"]; st.Count > 0 {
			note.LiveRouteNsPerJob = st.TotalNs / st.Count
		}
		if st := cachedStats["route"]; st.Count > 0 {
			note.CachedRouteNsPerJob = st.TotalNs / st.Count
		}
		note.LiveProbeSpans = liveStats["probe"].Count
		note.CachedProbeSpans = cachedStats["probe"].Count
		if note.CachedRouteNsPerJob > 0 {
			note.RouteSpeedup = float64(note.LiveRouteNsPerJob) / float64(note.CachedRouteNsPerJob)
		}
		rep.CachedLoads = note
		fmt.Fprintf(os.Stderr, "cached-loads shards=%d: route span %d ns/job live vs %d ns/job cached (%.1fx), live probes %d vs %d\n",
			maxShards, note.LiveRouteNsPerJob, note.CachedRouteNsPerJob, note.RouteSpeedup,
			note.LiveProbeSpans, note.CachedProbeSpans)

		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := liveTr.WriteTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			covered, total := liveTr.JobCoverage("submit", "route", "admit", "decide")
			fmt.Fprintf(os.Stderr, "federation-remote trace: %d/%d jobs with a full submit→route→admit→decide span tree, %d spans → %s\n",
				covered, total, len(liveTr.Spans()), traceOut)
		}
	}

	w := os.Stdout
	if outPath != "-" {
		w, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
