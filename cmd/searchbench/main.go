// Command searchbench benchmarks the search scheduler's per-decision
// hot path on synthetic contended decision points and emits a JSON
// report (BENCH_search.json): ns/decision, visited nodes/second and the
// parallel-vs-sequential speedup for each (algorithm, queue depth, node
// budget) combination.
//
// The workload is deterministic, so two runs on the same machine
// measure the same search trees; timings vary with hardware (the report
// records GOMAXPROCS and CPU count). The parallel scheduler commits the
// same schedules as the sequential one — the speedup column is pure
// wall-clock, not a behaviour change.
//
// Usage:
//
//	searchbench -out BENCH_search.json
//	searchbench -limits 1000,10000,100000 -depths 16,32,64 -time 200ms
//
// Federation mode (-federation) instead replays one deterministic
// synthetic workload through a sharded federation
// (internal/federation) at each shard count in -shards and emits
// BENCH_federation.json: wall time, decision latency and throughput
// for 1, 2, 4 shards — the scalability claim of partitioned search,
// measured:
//
//	searchbench -federation -shards 1,2,4 -fedjobs 400 -fedlimit 200
//
// Adding -remote repeats the federation sweep with every shard out of
// process: each shard is a full engine behind its own HTTP server on a
// real TCP loopback listener, driven through federation.RemoteShard
// clients — the report gains a "remote" section measuring the same
// workload over the wire (JSON serialization, HTTP round trips, remote
// load probes), so the scaling curve and the wire tax are separable:
//
//	searchbench -federation -remote -shards 1,4,16
//
// Ingest mode (-ingest) load-tests the accept path (internal/ingest):
// concurrent client fleets push batched submissions from a ~1M-user ID
// space through the accept queue into an engine with a group-commit
// file journal (real fsyncs), and BENCH_ingest.json reports, per load
// level, submission throughput, accept-to-commit latency quantiles,
// backpressure activity and peak heap:
//
//	searchbench -ingest -clients 4,16,64 -ingestjobs 50000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"schedsearch"
	"schedsearch/internal/benchmeta"
	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// benchResult is one (algorithm, depth, limit) measurement.
type benchResult struct {
	Algo       string `json:"algo"`
	QueueDepth int    `json:"queue_depth"`
	NodeLimit  int    `json:"node_limit"`
	// NodesPerDecision is the search-tree size actually explored (the
	// same for sequential and parallel by construction).
	NodesPerDecision int64 `json:"nodes_per_decision"`

	SeqNsPerDecision int64   `json:"seq_ns_per_decision"`
	SeqNodesPerSec   float64 `json:"seq_nodes_per_sec"`
	ParNsPerDecision int64   `json:"par_ns_per_decision"`
	ParNodesPerSec   float64 `json:"par_nodes_per_sec"`
	// SpeedupVsSeq is sequential over parallel wall time per decision.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
}

// report is the BENCH_search.json schema.
type report struct {
	benchmeta.Meta
	Workers   int           `json:"workers"`
	Heuristic string        `json:"heuristic"`
	Bound     string        `json:"bound"`
	Results   []benchResult `json:"results"`
	// Warm is the cold-vs-warm comparison over closed-loop month
	// replays; the bench aborts if warm start ever commits a schedule
	// differing from cold at equal effective budget.
	Warm []warmResult `json:"warm,omitempty"`
	// CDDSCarry compares CDDS climbing from a restart vs. the carried
	// reference across month replays.
	CDDSCarry []carryResult `json:"cdds_carry,omitempty"`
	// MetaBench compares fixed policies against the adaptive portfolio
	// (the -meta sweep).
	MetaBench *metaBenchResult `json:"meta,omitempty"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_search.json", "output file (- for stdout)")
		limits  = flag.String("limits", "1000,10000,100000", "node budgets L to measure")
		depths  = flag.String("depths", "16,32,64", "queue depths to measure")
		algos   = flag.String("algos", "DDS,LDS", "search algorithms to measure")
		minTime = flag.Duration("time", 200*time.Millisecond, "minimum measurement time per configuration")
		workers = flag.Int("workers", core.AutoWorkers, "parallel worker count (-1 one per CPU)")

		warmAlgos = flag.String("warmalgos", "DDS,CDDS", "algorithms for the cold-vs-warm month replays (empty = skip)")
		warmLimit = flag.Int("warmlimit", 1000, "node budget L for the cold-vs-warm replays")
		metaMode  = flag.Bool("meta", false, "also sweep the policy-portfolio meta-scheduler against its fixed members (adds the \"meta\" and \"cdds_carry\" report sections)")
		metaSpecs = flag.String("metaspecs", "DDS/lxf/dynB,LDS/fcfs/dynB", "portfolio member policies for the -meta sweep")
		metaLimit = flag.Int("metalimit", 300, "node budget L for the -meta sweep and the cdds_carry replays")
		fedMode   = flag.Bool("federation", false, "benchmark the sharded federation instead of the search hot path")
		shards    = flag.String("shards", "1,2,4", "shard counts to measure in -federation mode")
		fedJobs   = flag.Int("fedjobs", 400, "synthetic jobs per federation replay")
		fedLim    = flag.Int("fedlimit", 200, "search node limit per decision in -federation mode")
		fedRemote = flag.Bool("remote", false, "in -federation mode, also sweep out-of-process shards (each an engine behind its own HTTP server on real TCP, driven through federation.RemoteShard) into the report's \"remote\" section")
		fedTrace  = flag.String("trace-out", "", "in -federation -remote mode, write the traced remote replay's spans (submit/route/probe/admit/decide) as Chrome trace-event JSON to this file")

		ingMode    = flag.Bool("ingest", false, "load-test the batched ingest path instead of the search hot path")
		clients    = flag.String("clients", "4,16,64", "client fleet sizes (load levels) in -ingest mode")
		ingJobs    = flag.Int("ingestjobs", 50000, "total jobs per load level in -ingest mode")
		ingBatch   = flag.Int("ingestbatch", 32, "jobs per client batch in -ingest mode")
		ingPending = flag.Int("ingestpending", 4096, "accept-queue bound (MaxPending) in -ingest mode")
		ingUsers   = flag.Int("ingestusers", 1_000_000, "simulated user ID space in -ingest mode")
	)
	flag.Parse()

	outPath := func(def string) string {
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				outSet = true
			}
		})
		if outSet {
			return *out
		}
		return def
	}

	if *fedMode {
		shardCounts, err := parseInts(*shards)
		if err != nil {
			fatal(err)
		}
		if err := runFederationBench(outPath("BENCH_federation.json"), shardCounts, *fedJobs, *fedLim, 128, *fedRemote, *fedTrace); err != nil {
			fatal(err)
		}
		return
	}

	if *ingMode {
		fleets, err := parseInts(*clients)
		if err != nil {
			fatal(err)
		}
		if err := runIngestBench(outPath("BENCH_ingest.json"), ingestBenchConfig{
			Fleets:     fleets,
			Jobs:       *ingJobs,
			Batch:      *ingBatch,
			MaxPending: *ingPending,
			Users:      *ingUsers,
		}); err != nil {
			fatal(err)
		}
		return
	}

	ls, err := parseInts(*limits)
	if err != nil {
		fatal(err)
	}
	ds, err := parseInts(*depths)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Meta:      benchmeta.Collect("searchbench"),
		Workers:   *workers,
		Heuristic: core.HeuristicLXF.String(),
		Bound:     core.DynamicBound().String(),
	}
	if rep.Workers == core.AutoWorkers {
		rep.Workers = rep.GOMAXPROCS
	}

	benchAlgos, err := parseAlgos(*algos)
	if err != nil {
		fatal(err)
	}
	for _, algo := range benchAlgos {
		for _, depth := range ds {
			snap := benchSnapshot(depth)
			for _, limit := range ls {
				r := measurePair(algo, snap, depth, limit, *workers, *minTime)
				rep.Results = append(rep.Results, r)
				fmt.Fprintf(os.Stderr, "%s depth=%d L=%d: seq %s/decision, par %s/decision, speedup %.2fx\n",
					r.Algo, depth, limit,
					time.Duration(r.SeqNsPerDecision), time.Duration(r.ParNsPerDecision),
					r.SpeedupVsSeq)
			}
		}
	}

	if *warmAlgos != "" {
		was, err := parseAlgos(*warmAlgos)
		if err != nil {
			fatal(err)
		}
		rep.Warm = runWarmBench(was, schedsearch.MonthLabels(), *warmLimit)
	}

	if *metaMode {
		specs := strings.Split(*metaSpecs, ",")
		rep.CDDSCarry = runCarryBench(schedsearch.MonthLabels(), *metaLimit)
		meta := runMetaBench(specs, schedsearch.MonthLabels(), *metaLimit)
		rep.MetaBench = &meta
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "searchbench:", err)
	os.Exit(1)
}

// parseAlgos resolves a comma-separated algorithm list.
func parseAlgos(csv string) ([]core.Algorithm, error) {
	var out []core.Algorithm
	for _, f := range strings.Split(csv, ",") {
		switch strings.TrimSpace(f) {
		case "DDS":
			out = append(out, core.DDS)
		case "LDS":
			out = append(out, core.LDS)
		case "ADDS":
			out = append(out, core.ADDS)
		case "CDDS":
			out = append(out, core.CDDS)
		default:
			return nil, fmt.Errorf("unknown algorithm %q (want DDS, LDS, ADDS or CDDS)", f)
		}
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad list entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// measurePair measures one configuration sequentially and in parallel.
func measurePair(algo core.Algorithm, snap *sim.Snapshot, depth, limit, workers int, minTime time.Duration) benchResult {
	seq := core.New(algo, core.HeuristicLXF, core.DynamicBound(), limit)
	seqNs, nodes := measure(seq, snap, minTime)
	par := core.New(algo, core.HeuristicLXF, core.DynamicBound(), limit)
	par.Workers = workers
	parNs, parNodes := measure(par, snap, minTime)
	if nodes != parNodes {
		fatal(fmt.Errorf("%s depth=%d L=%d: parallel explored %d nodes/decision, sequential %d",
			algo, depth, limit, parNodes, nodes))
	}
	r := benchResult{
		Algo:             algo.String(),
		QueueDepth:       depth,
		NodeLimit:        limit,
		NodesPerDecision: nodes,
		SeqNsPerDecision: seqNs,
		ParNsPerDecision: parNs,
	}
	if seqNs > 0 {
		r.SeqNodesPerSec = float64(nodes) / float64(seqNs) * 1e9
	}
	if parNs > 0 {
		r.ParNodesPerSec = float64(nodes) / float64(parNs) * 1e9
		r.SpeedupVsSeq = float64(seqNs) / float64(parNs)
	}
	return r
}

// measure runs Decide repeatedly for at least minTime (and at least
// three repetitions after one warm-up), returning wall ns/decision and
// nodes visited per decision.
func measure(sch *core.Scheduler, snap *sim.Snapshot, minTime time.Duration) (nsPerDecision, nodesPerDecision int64) {
	sch.Decide(snap) // warm-up: allocate scratch, fault in the tree
	startStats := sch.SearchStats
	reps := 0
	t0 := time.Now()
	for time.Since(t0) < minTime || reps < 3 {
		sch.Decide(snap)
		reps++
	}
	elapsed := time.Since(t0).Nanoseconds()
	nodes := sch.SearchStats.Nodes - startStats.Nodes
	return elapsed / int64(reps), nodes / int64(reps)
}

// benchSnapshot builds the deterministic contended decision point: a
// 128-node machine, 30 running jobs holding 100 nodes with staggered
// predicted ends, and queueLen waiting jobs of mixed widths and
// estimates (the same construction the repo's Go benchmarks use).
func benchSnapshot(queueLen int) *sim.Snapshot {
	snap := &sim.Snapshot{Now: 100000, Capacity: 128, FreeNodes: 128}
	used := 0
	for i := 0; i < 30 && used < 100; i++ {
		n := 1 + (i*7)%8
		if used+n > 100 {
			n = 100 - used
		}
		used += n
		snap.Running = append(snap.Running, sim.RunningJob{
			ID: 1000 + i, Nodes: n, Start: 0,
			PredictedEnd: snap.Now + job.Duration(300+i*977%21600),
		})
	}
	snap.FreeNodes = 128 - used
	for i := 0; i < queueLen; i++ {
		est := job.Duration(300 + (i*2311)%43200)
		snap.Queue = append(snap.Queue, sim.WaitingJob{
			Job: job.Job{
				ID:      i + 1,
				Submit:  snap.Now - job.Time(60+(i*3571)%36000),
				Nodes:   1 + (i*13)%64,
				Runtime: est, Request: est,
			},
			Estimate: est,
			QueuePos: i,
		})
	}
	return snap
}
