package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"schedsearch/internal/benchmeta"
	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
	"schedsearch/internal/policy"
)

// ingestBenchConfig shapes the -ingest load test.
type ingestBenchConfig struct {
	// Fleets are the client counts to measure, one load level each.
	Fleets []int
	// Jobs is the total submissions per level, split across the fleet.
	Jobs int
	// Batch is the items per client batch.
	Batch int
	// MaxPending bounds the accept queue; clients that hit ErrSaturated
	// back off and retry, so saturations show up as retries and
	// latency, never as lost jobs.
	MaxPending int
	// Users is the simulated user-ID space (~1M by default); quota
	// buckets are provisioned lazily, so memory tracks active users.
	Users int
}

// ingestResult is one load level's measurement.
type ingestResult struct {
	Clients   int `json:"clients"`
	Jobs      int `json:"jobs"`
	BatchSize int `json:"batch_size"`

	WallMs        float64 `json:"wall_ms"`
	SubmitsPerSec float64 `json:"submits_per_sec"`
	// Accept latency is the queue's accept-to-commit histogram:
	// conservative (bucket upper bound) quantiles in microseconds.
	AcceptP50Us int64 `json:"accept_p50_us"`
	AcceptP99Us int64 `json:"accept_p99_us"`
	AcceptMaxUs int64 `json:"accept_max_us"`

	// Backpressure: whole-batch bounces, the retries that re-landed
	// them, and the pending high-water mark (never above MaxPending).
	Saturations int64 `json:"saturations"`
	Retries     int64 `json:"retries"`
	PeakPending int   `json:"peak_pending"`
	// SyncGroups and EventsPerSync show group commit at work: jobs
	// per journal fsync grows with concurrency.
	SyncGroups    int64   `json:"sync_groups"`
	JournalSyncs  int64   `json:"journal_syncs"`
	EventsPerSync float64 `json:"events_per_sync"`
	// ActiveUsers is the number of live quota buckets at the end;
	// PeakHeapMB the sampled heap high-water mark for the level.
	ActiveUsers int     `json:"active_users"`
	PeakHeapMB  float64 `json:"peak_heap_mb"`
}

// ingestReport is the BENCH_ingest.json schema.
type ingestReport struct {
	benchmeta.Meta
	Capacity   int            `json:"capacity"`
	MaxPending int            `json:"max_pending"`
	UserSpace  int            `json:"user_space"`
	Results    []ingestResult `json:"results"`
}

// runIngestBench measures the batched accept path at each fleet size:
// N clients submit ID-less batches drawn from a huge user space
// through the accept queue into an engine journaling to a real file
// (real fsyncs — group commit is what makes the numbers). The virtual
// clock never advances, so the measurement isolates admission cost
// (validation, quota check, queueing, ledger insert, journal append,
// group fsync) from scheduling cost.
func runIngestBench(outPath string, cfg ingestBenchConfig) error {
	dir, err := os.MkdirTemp("", "searchbench-ingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := ingestReport{
		Meta:       benchmeta.Collect("searchbench -ingest"),
		Capacity:   1024,
		MaxPending: cfg.MaxPending,
		UserSpace:  cfg.Users,
	}
	for _, fleet := range cfg.Fleets {
		r, err := runIngestLevel(filepath.Join(dir, fmt.Sprintf("journal-%d.log", fleet)), fleet, cfg, rep.Capacity)
		if err != nil {
			return fmt.Errorf("ingest bench: %d clients: %w", fleet, err)
		}
		rep.Results = append(rep.Results, *r)
		fmt.Fprintf(os.Stderr, "ingest clients=%d: %.0f submits/s, accept p50 %dµs p99 %dµs, %d saturations, %.1f events/fsync, peak heap %.1f MB\n",
			fleet, r.SubmitsPerSec, r.AcceptP50Us, r.AcceptP99Us, r.Saturations, r.EventsPerSync, r.PeakHeapMB)
	}

	w := os.Stdout
	if outPath != "-" {
		w, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runIngestLevel(journalPath string, fleet int, cfg ingestBenchConfig, capacity int) (*ingestResult, error) {
	fj, err := engine.OpenFileJournal(journalPath, 64)
	if err != nil {
		return nil, err
	}
	defer fj.Close()
	e, err := engine.New(engine.Config{
		Capacity: capacity,
		Policy:   policy.FCFSBackfill(),
		Clock:    engine.NewVirtualClock(),
		Journal:  fj,
	})
	if err != nil {
		return nil, err
	}
	// Quotas sized so an honest load never trips them: the bench
	// measures their bookkeeping cost, not rejections.
	q, err := ingest.NewQueue(ingest.Config{
		Backend:    e,
		MaxPending: cfg.MaxPending,
		MaxBatch:   64,
		Quotas:     ingest.NewQuotas(1000, 256, e.Now),
	})
	if err != nil {
		return nil, err
	}
	defer q.Close()

	// Sample the heap high-water mark while the storm runs.
	var peakHeap atomic.Uint64
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				old := peakHeap.Load()
				if ms.HeapAlloc <= old || peakHeap.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-sampleStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	perClient := cfg.Jobs / fleet
	var retries atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, fleet)
	runtime.GC()
	t0 := time.Now()
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client walks its own arithmetic stride through the
			// user space — deterministic, collision-light, ~1M distinct
			// users across the fleet at scale.
			user := c * 7919
			batch := make([]job.Job, 0, cfg.Batch)
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				for {
					results, err := q.SubmitBatch(batch)
					if errors.Is(err, ingest.ErrSaturated) {
						retries.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if err != nil {
						return err
					}
					for _, it := range results {
						if it.Err != nil {
							return fmt.Errorf("job %d/%d rejected: %w", c, it.Index, it.Err)
						}
					}
					batch = batch[:0]
					return nil
				}
			}
			for i := 0; i < perClient; i++ {
				user = (user + 104729) % cfg.Users
				rt := job.Duration(300 + (i*2311)%14400)
				batch = append(batch, job.Job{
					Nodes:   1 + (i*13)%64,
					Runtime: rt,
					Request: rt,
					User:    user,
				})
				if len(batch) == cfg.Batch {
					if err := flush(); err != nil {
						errs <- err
						return
					}
				}
			}
			if err := flush(); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	q.Flush()
	wall := time.Since(t0)
	close(sampleStop)
	sampleWG.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	if err := e.Err(); err != nil {
		return nil, err
	}

	st := q.Stats()
	jobs := perClient * fleet
	if st.Committed != int64(jobs) {
		return nil, fmt.Errorf("committed %d of %d jobs", st.Committed, jobs)
	}
	js := fj.Stats()
	r := &ingestResult{
		Clients:      fleet,
		Jobs:         jobs,
		BatchSize:    cfg.Batch,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		AcceptP50Us:  st.Latency.P50Us,
		AcceptP99Us:  st.Latency.P99Us,
		AcceptMaxUs:  st.Latency.MaxUs,
		Saturations:  st.Saturations,
		Retries:      retries.Load(),
		PeakPending:  st.PeakPending,
		SyncGroups:   st.SyncGroups,
		JournalSyncs: js.Syncs,
		ActiveUsers:  st.QuotaUsers,
		PeakHeapMB:   float64(peakHeap.Load()) / (1 << 20),
	}
	if wall > 0 {
		r.SubmitsPerSec = float64(jobs) / wall.Seconds()
	}
	if js.Syncs > 0 {
		r.EventsPerSync = float64(js.Appends) / float64(js.Syncs)
	}
	return r, nil
}
