// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all              # everything, full scale (slow)
//	experiments -run fig4 -scale 0.25 # one figure, quick
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"schedsearch/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id (or comma list, or 'all')")
		list   = flag.Bool("list", false, "list experiment ids")
		seed   = flag.Uint64("seed", 1, "workload generation seed")
		scale  = flag.Float64("scale", 1, "workload scale factor (1 = paper scale)")
		months = flag.String("months", "", "comma-separated month labels (default all)")
		lscale = flag.Float64("limitscale", 1, "scale factor on the paper's search node limits")
		csvDir = flag.String("csv", "", "export headline figure data as CSV files into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, LimitScale: *lscale}
	if *months != "" {
		cfg.Months = strings.Split(*months, ",")
	}

	if *csvDir != "" {
		if err := experiments.ExportCSV(cfg, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV series written to %s\n", *csvDir)
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
