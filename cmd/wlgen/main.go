// Command wlgen generates the synthetic NCSA IA-64 workload suite and
// either prints its Table 3/Table 4-style summary or exports a month as
// an SWF trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"schedsearch/internal/trace"
	"schedsearch/internal/workload"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 1, "generation seed")
		scale = flag.Float64("scale", 1, "job-count/duration scale factor")
		swf   = flag.String("swf", "", "write this month's jobs as SWF to stdout")
	)
	flag.Parse()

	suite := workload.NewSuite(workload.Config{Seed: *seed, JobScale: *scale})
	if *swf != "" {
		if err := exportSWF(suite, *swf); err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-6s %6s %9s %9s   %s\n", "month", "jobs", "specLoad", "genLoad", "job-mix check (max |Δ| jobFrac, demandFrac, short, long)")
	for _, m := range suite.RealMonths() {
		st := m.Stats(suite.Capacity)
		dj, dd, ds, dl := maxDeltas(m.Spec, st)
		fmt.Printf("%-6s %6d %9.2f %9.3f   %.3f %.3f %.3f %.3f\n",
			m.Spec.Label, st.TotalJobs, m.Spec.Load, st.Load, dj, dd, ds, dl)
	}
}

func maxDeltas(spec workload.MonthSpec, st workload.MixStats) (dj, dd, ds, dl float64) {
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	for i := range spec.JobFrac {
		dj = max(dj, abs(spec.JobFrac[i]-st.JobFrac[i]))
		dd = max(dd, abs(spec.DemandFrac[i]-st.DemandFrac[i]))
	}
	for i := range spec.ShortFrac {
		ds = max(ds, abs(spec.ShortFrac[i]-st.ShortFrac[i]))
		dl = max(dl, abs(spec.LongFrac[i]-st.LongFrac[i]))
	}
	return
}

func exportSWF(suite *workload.Suite, label string) error {
	m, err := suite.Month(label)
	if err != nil {
		return err
	}
	return trace.WriteSWF(os.Stdout, m.Jobs, trace.Header{
		Computer: "synthetic NCSA IA-64 (Titan)",
		Note:     "calibrated to Vasupongayya/Chiang/Massey, Cluster 2005, month " + label,
		MaxNodes: suite.Capacity,
	})
}
