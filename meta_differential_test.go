package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/metasched"
	"schedsearch/internal/sim"
)

// metaMirrorPolicy drives a month with a singleton meta(P) portfolio
// while a bare twin of P decides every snapshot, failing on the first
// decision where the committed starts diverge. The meta decisions are
// the ones the simulator commits, so identical month-end records prove
// the pass-through is exact end to end.
type metaMirrorPolicy struct {
	t         *testing.T
	bare      sim.Policy
	meta      *metasched.Meta
	decisions int
}

func (m *metaMirrorPolicy) Name() string { return m.meta.Name() }

func (m *metaMirrorPolicy) Decide(snap *sim.Snapshot) []int {
	m.decisions++
	bareStarts := append([]int(nil), m.bare.Decide(snap)...)
	metaStarts := m.meta.Decide(snap)
	if len(bareStarts) != len(metaStarts) {
		m.t.Fatalf("decision %d: meta starts %v, bare %v", m.decisions, metaStarts, bareStarts)
	}
	for i := range bareStarts {
		if bareStarts[i] != metaStarts[i] {
			m.t.Fatalf("decision %d: meta starts %v, bare %v", m.decisions, metaStarts, bareStarts)
		}
	}
	return metaStarts
}

// TestMetaSingletonSuiteDifferential is the meta-scheduling keystone:
// meta(P) with a singleton portfolio must commit bit-identical
// schedules to bare P on every decision point of every suite month —
// the meta layer (record-keeping included) adds zero scheduling drift.
// Run under -race.
func TestMetaSingletonSuiteDifferential(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	for _, month := range schedsearch.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			bare := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 24)
			bare.WarmStart = true
			inner := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 24)
			meta, err := metasched.New([]sim.Policy{inner}, metasched.Config{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			meta.SetSearchOptions(0, true) // mirror the bare twin's warm start
			if meta.Name() != "meta(DDS/lxf/dynB)" {
				t.Fatalf("singleton name %q", meta.Name())
			}

			m := &metaMirrorPolicy{t: t, bare: bare, meta: meta}
			sum, _, err := schedsearch.RunMonth(suite, month, schedsearch.SimOptions{TargetLoad: 0.95}, m)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Jobs == 0 {
				t.Fatal("no jobs measured")
			}
			st := meta.MetaStats()
			if st.Decisions != m.decisions {
				t.Errorf("meta recorded %d decisions, simulator made %d", st.Decisions, m.decisions)
			}
			if st.ShadowNodes != 0 || st.ShadowWallNs != 0 {
				t.Errorf("singleton portfolio spent shadow effort: %+v", st)
			}
			if _, regret, ok := meta.LastMetaDecision(); !ok || regret != 0 {
				t.Errorf("singleton regret %v, want 0", regret)
			}
		})
	}
}

// TestMetaParsedPortfolioRuns drives a ParsePolicy-built multi-arm
// portfolio through a suite month end to end (the grammar the cmds
// accept), checking the committed run completes and the bandit
// actually commits through more than one arm or at least accounts
// every decision.
func TestMetaParsedPortfolioRuns(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	pol, err := schedsearch.ParsePolicy("meta(DDS/lxf/dynB,LDS/fcfs/dynB,FCFS-backfill)", 64)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := pol.(*metasched.Meta)
	if !ok {
		t.Fatalf("ParsePolicy returned %T", pol)
	}
	sum, _, err := schedsearch.RunMonth(suite, "1/04", schedsearch.SimOptions{TargetLoad: 0.95}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs == 0 {
		t.Fatal("no jobs measured")
	}
	st := meta.MetaStats()
	if st.Decisions == 0 || st.ShadowNodes == 0 {
		t.Fatalf("portfolio never shadow-evaluated: %+v", st)
	}
	var commits int64
	for _, c := range st.ArmCommits {
		commits += c
	}
	if commits != int64(st.Decisions) {
		t.Fatalf("arm commits %v do not sum to %d decisions", st.ArmCommits, st.Decisions)
	}
}
