package schedsearch_test

import (
	"fmt"

	"schedsearch"
)

// ExampleParsePolicy shows the policy naming scheme shared by the CLIs
// and the library.
func ExampleParsePolicy() {
	for _, name := range []string{"FCFS-backfill", "DDS/lxf/dynB", "LDS/fcfs/100h"} {
		p, err := schedsearch.ParsePolicy(name, 1000)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(p.Name())
	}
	// Output:
	// FCFS-backfill
	// DDS/lxf/dynB
	// LDS/fcfs/fixB=100h
}

// ExampleNewSearchScheduler configures the paper's best policy.
func ExampleNewSearchScheduler() {
	sch := schedsearch.NewSearchScheduler(
		schedsearch.DDS,            // depth-bounded discrepancy search
		schedsearch.HeuristicLXF,   // largest-slowdown-first branching
		schedsearch.DynamicBound(), // bound = longest current wait
		1000,                       // node budget L per decision
	)
	fmt.Println(sch.Name())
	// Output:
	// DDS/lxf/dynB
}

// ExampleRunMonth runs a deterministic simulation end to end. The
// workload is synthetic, so the exact numbers are reproducible given
// the seed.
func ExampleRunMonth() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	sum, _, err := schedsearch.RunMonth(suite, "6/03", schedsearch.SimOptions{},
		schedsearch.FCFSBackfill())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("measured %v jobs under %s\n", sum.Jobs > 100, sum.Policy)
	fmt.Printf("wait ordering sane: %v\n", sum.AvgWaitH <= sum.P98WaitH && sum.P98WaitH <= sum.MaxWaitH)
	// Output:
	// measured true jobs under FCFS-backfill
	// wait ordering sane: true
}

// ExampleFixedBound shows the bound naming used in reports.
func ExampleFixedBound() {
	fmt.Println(schedsearch.DynamicBound())
	fmt.Println(schedsearch.FixedBound(50 * schedsearch.Hour))
	// Output:
	// dynB
	// fixB=50h
}

// ExampleExcessiveWait computes the paper's E^t measure against a
// chosen threshold.
func ExampleExcessiveWait() {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	sum, res, err := schedsearch.RunMonth(suite, "6/03", schedsearch.SimOptions{},
		schedsearch.LXFBackfill())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Every run has zero excess w.r.t. its own maximum wait.
	e := schedsearch.ExcessiveWait(res, sum.MaxWaitH)
	fmt.Println(e.Count, e.TotalH)
	// Output:
	// 0 0
}
