package schedsearch_test

import (
	"strings"
	"testing"

	"schedsearch"
	"schedsearch/internal/core"
)

// TestParsePolicyErrors covers every rejection path of ParsePolicy.
func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantSub string // substring the error must carry
	}{
		{"empty", "", "unknown policy"},
		{"unknown flat name", "EASY-backfill", "unknown policy"},
		{"two parts", "DDS/lxf", "unknown policy"},
		{"four parts", "DDS/lxf/dynB/extra", "unknown policy"},
		{"unknown algorithm", "BFS/lxf/dynB", "unknown search algorithm"},
		{"lowercase algorithm", "dds/lxf/dynB", "unknown search algorithm"},
		{"unknown heuristic", "DDS/sjf/dynB", "unknown branching heuristic"},
		{"uppercase heuristic", "DDS/LXF/dynB", "unknown branching heuristic"},
		{"malformed bound", "DDS/lxf/12q", "bound"},
		{"negative bound", "DDS/lxf/-5h", "bound"},
		{"bare number bound", "DDS/lxf/12", "bound"},
		{"empty bound", "DDS/lxf/", "bound"},
		{"dynB typo", "DDS/lxf/dynb", "bound"},
		{"trailing garbage after unit", "DDS/lxf/100h30", "bound"},
		{"trailing garbage canonical", "DDS/lxf/fixB=100h30", "bound"},
		{"bare fixB prefix", "DDS/lxf/fixB=", "bound"},
		{"unit only", "DDS/lxf/h", "bound"},
		{"non-digit magnitude", "DDS/lxf/1x0h", "bound"},
		{"overflow magnitude", "DDS/lxf/99999999999999999999h", "bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := schedsearch.ParsePolicy(tc.input, 100)
			if err == nil {
				t.Fatalf("ParsePolicy(%q) accepted as %q", tc.input, pol.Name())
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParsePolicy(%q) error %q, want mention of %q", tc.input, err, tc.wantSub)
			}
		})
	}
}

// TestParsePolicyRoundTrips: ParsePolicy(p.Name()) must reconstruct p
// for every constructible search policy — all algorithm, heuristic and
// bound combinations — and the shorthand bound spellings must build the
// same policy as the canonical "fixB=" form Scheduler.Name emits.
func TestParsePolicyRoundTrips(t *testing.T) {
	algos := []core.Algorithm{core.LDS, core.DDS, core.DFS, core.ADDS, core.CDDS}
	heurs := []core.Heuristic{core.HeuristicFCFS, core.HeuristicLXF}
	bounds := []core.BoundSpec{
		core.DynamicBound(),
		core.FixedBound(0),
		core.FixedBound(100 * 3600), // 100h
		core.FixedBound(30 * 60),    // 30m: must not round-trip through "0h"
		core.FixedBound(90),         // 90s
		core.FixedBound(3601),       // 1h1s: seconds spelling
	}
	for _, algo := range algos {
		for _, h := range heurs {
			for _, b := range bounds {
				sch := core.New(algo, h, b, 100)
				name := sch.Name()
				pol, err := schedsearch.ParsePolicy(name, 100)
				if err != nil {
					t.Fatalf("ParsePolicy(%q) failed: %v", name, err)
				}
				if pol.Name() != name {
					t.Fatalf("round trip %q -> %q", name, pol.Name())
				}
				back, ok := pol.(*core.Scheduler)
				if !ok {
					t.Fatalf("ParsePolicy(%q) built %T", name, pol)
				}
				if back.Algorithm != algo || back.Heuristic != h || back.Bound != b {
					t.Fatalf("ParsePolicy(%q) = {%v %v %v}, want {%v %v %v}",
						name, back.Algorithm, back.Heuristic, back.Bound, algo, h, b)
				}
			}
		}
	}

	// Shorthand and canonical spellings build identical policies.
	for _, spellings := range [][2]string{
		{"DDS/lxf/100h", "DDS/lxf/fixB=100h"},
		{"LDS/fcfs/30m", "LDS/fcfs/fixB=30m"},
		{"DFS/lxf/90s", "DFS/lxf/fixB=90s"},
		{"DDS/fcfs/0h", "DDS/fcfs/fixB=0h"},
	} {
		short, err := schedsearch.ParsePolicy(spellings[0], 100)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) failed: %v", spellings[0], err)
		}
		canon, err := schedsearch.ParsePolicy(spellings[1], 100)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) failed: %v", spellings[1], err)
		}
		if short.Name() != canon.Name() {
			t.Fatalf("%q parsed as %q, %q as %q", spellings[0], short.Name(),
				spellings[1], canon.Name())
		}
	}
}

// TestParsePolicyMeta covers the portfolio grammar through the facade:
// meta(...) names round-trip, members accept every base spelling, and
// malformed portfolios are rejected with a meaningful error.
func TestParsePolicyMeta(t *testing.T) {
	for _, name := range []string{
		"meta(DDS/lxf/dynB)",
		"meta(DDS/lxf/dynB,FCFS-backfill)",
		"meta(DDS/lxf/fixB=100h,LDS/fcfs/dynB,LXF-backfill)",
	} {
		pol, err := schedsearch.ParsePolicy(name, 100)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) failed: %v", name, err)
		}
		if pol.Name() != name {
			t.Fatalf("round trip %q -> %q", name, pol.Name())
		}
		m, ok := pol.(*schedsearch.MetaScheduler)
		if !ok {
			t.Fatalf("ParsePolicy(%q) built %T", name, pol)
		}
		if len(m.Members()) == 0 {
			t.Fatalf("ParsePolicy(%q) built an empty portfolio", name)
		}
	}
	// Shorthand bounds canonicalize inside the portfolio name too.
	pol, err := schedsearch.ParsePolicy("meta(DDS/lxf/100h,FCFS-backfill)", 100)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "meta(DDS/lxf/fixB=100h,FCFS-backfill)" {
		t.Fatalf("shorthand member canonicalized to %q", pol.Name())
	}
	for _, bad := range []struct {
		input   string
		wantSub string
	}{
		{"meta()", "at least one member"},
		{"meta(DDS/lxf/dynB", "parenthesis"},
		{"meta(DDS/lxf/dynB,)", "empty member"},
		{"meta(,FCFS-backfill)", "empty member"},
		{"meta(meta(DDS/lxf/dynB))", "nested"},
		{"meta(BFS/lxf/dynB)", "unknown search algorithm"},
		{"meta(DDS/lxf/dynB,EASY-backfill)", "unknown policy"},
	} {
		pol, err := schedsearch.ParsePolicy(bad.input, 100)
		if err == nil {
			t.Fatalf("ParsePolicy(%q) accepted as %q", bad.input, pol.Name())
		}
		if !strings.Contains(err.Error(), bad.wantSub) {
			t.Fatalf("ParsePolicy(%q) error %q, want mention of %q", bad.input, err, bad.wantSub)
		}
	}

	// ParsePolicyMeta threads a custom bandit config into the portfolio.
	polC, err := schedsearch.ParsePolicyMeta("meta(DDS/lxf/dynB,FCFS-backfill)", 100,
		schedsearch.MetaConfig{Seed: 9, Kind: schedsearch.EXP3BanditKind})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := polC.(*schedsearch.MetaScheduler); !ok {
		t.Fatalf("ParsePolicyMeta built %T", polC)
	}
}

// TestBoundStringLossless: sub-hour fixed bounds must render in a unit
// that preserves them ("30m", not the truncated "0h").
func TestBoundStringLossless(t *testing.T) {
	cases := []struct {
		omega int64
		want  string
	}{
		{0, "fixB=0h"},
		{100 * 3600, "fixB=100h"},
		{30 * 60, "fixB=30m"},
		{90, "fixB=90s"},
		{3600, "fixB=1h"},
		{3660, "fixB=61m"},
		{3661, "fixB=3661s"},
	}
	for _, c := range cases {
		b := schedsearch.FixedBound(c.omega)
		if got := b.String(); got != c.want {
			t.Errorf("FixedBound(%d).String() = %q, want %q", c.omega, got, c.want)
		}
		back, err := core.ParseBound(b.String())
		if err != nil {
			t.Errorf("ParseBound(%q) failed: %v", b.String(), err)
		} else if back != b {
			t.Errorf("ParseBound(%q) = %+v, want %+v", b.String(), back, b)
		}
	}
}

// TestFacadeConstructors exercises every facade constructor: each must
// build a working policy whose Name round-trips where a name scheme
// exists, and survive one simulated month.
func TestFacadeConstructors(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 5, JobScale: 0.03})
	run := func(t *testing.T, p schedsearch.Policy) schedsearch.Summary {
		t.Helper()
		sum, _, err := schedsearch.RunMonth(suite, "7/03", schedsearch.SimOptions{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Jobs == 0 {
			t.Fatal("no jobs measured")
		}
		return sum
	}

	t.Run("NewSearchScheduler", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), schedsearch.DefaultLimit1K)
		if p.Name() != "DDS/lxf/dynB" {
			t.Fatalf("name %q, want DDS/lxf/dynB", p.Name())
		}
		run(t, p)
		if p.SearchStats.Decisions == 0 {
			t.Fatal("no search decisions recorded")
		}
	})
	t.Run("FixedBound", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.LDS, schedsearch.HeuristicFCFS,
			schedsearch.FixedBound(100*schedsearch.Hour), 500)
		if p.Name() != "LDS/fcfs/fixB=100h" { // canonical form of "100h"
			t.Fatalf("name %q, want LDS/fcfs/fixB=100h", p.Name())
		}
		run(t, p)
	})
	t.Run("Backfill", func(t *testing.T) {
		if n := schedsearch.FCFSBackfill().Name(); n != "FCFS-backfill" {
			t.Fatalf("name %q", n)
		}
		if n := schedsearch.LXFBackfill().Name(); n != "LXF-backfill" {
			t.Fatalf("name %q", n)
		}
		run(t, schedsearch.FCFSBackfill())
	})
	t.Run("NewLocalScheduler", func(t *testing.T) {
		run(t, schedsearch.NewLocalScheduler(schedsearch.HeuristicLXF, schedsearch.DynamicBound(), 300))
	})
	t.Run("NewHybridScheduler", func(t *testing.T) {
		run(t, schedsearch.NewHybridScheduler(schedsearch.HeuristicLXF, schedsearch.DynamicBound(), 300))
	})
	t.Run("NewFairshareScheduler", func(t *testing.T) {
		inner := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		run(t, schedsearch.NewFairshareScheduler(inner, 0.5))
	})
	t.Run("RuntimeScaledCost", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		p.Cost = schedsearch.RuntimeScaledCost(2.0, schedsearch.Hour)
		run(t, p)
	})
	t.Run("NewUserHistoryPredictor", func(t *testing.T) {
		est := schedsearch.NewUserHistoryPredictor()
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		sum, _, err := schedsearch.RunMonthWithEstimator(suite, "7/03", schedsearch.SimOptions{}, est, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Jobs == 0 {
			t.Fatal("no jobs measured")
		}
	})
}

// TestFacadeEngine drives the online engine through the facade: a
// virtual-clock engine scheduling with the paper's best policy.
func TestFacadeEngine(t *testing.T) {
	vc := schedsearch.NewVirtualClock()
	pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 100)
	e, err := schedsearch.NewEngine(schedsearch.EngineConfig{
		Capacity: 16, Policy: pol, Clock: vc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(schedsearch.Job{Nodes: 8, Runtime: 1800, Request: 1800}); err != nil {
			t.Fatal(err)
		}
	}
	vc.Run()
	m := e.Metrics()
	if m.Jobs.Done != 4 {
		t.Fatalf("%d jobs done, want 4", m.Jobs.Done)
	}
	if m.Policy != "DDS/lxf/dynB" {
		t.Fatalf("policy %q", m.Policy)
	}
}
