package schedsearch_test

import (
	"strings"
	"testing"

	"schedsearch"
)

// TestParsePolicyErrors covers every rejection path of ParsePolicy.
func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantSub string // substring the error must carry
	}{
		{"empty", "", "unknown policy"},
		{"unknown flat name", "EASY-backfill", "unknown policy"},
		{"two parts", "DDS/lxf", "unknown policy"},
		{"four parts", "DDS/lxf/dynB/extra", "unknown policy"},
		{"unknown algorithm", "BFS/lxf/dynB", "unknown search algorithm"},
		{"lowercase algorithm", "dds/lxf/dynB", "unknown search algorithm"},
		{"unknown heuristic", "DDS/sjf/dynB", "unknown branching heuristic"},
		{"uppercase heuristic", "DDS/LXF/dynB", "unknown branching heuristic"},
		{"malformed bound", "DDS/lxf/12q", "bound"},
		{"negative bound", "DDS/lxf/-5h", "bound"},
		{"bare number bound", "DDS/lxf/12", "bound"},
		{"empty bound", "DDS/lxf/", "bound"},
		{"dynB typo", "DDS/lxf/dynb", "bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := schedsearch.ParsePolicy(tc.input, 100)
			if err == nil {
				t.Fatalf("ParsePolicy(%q) accepted as %q", tc.input, pol.Name())
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParsePolicy(%q) error %q, want mention of %q", tc.input, err, tc.wantSub)
			}
		})
	}
}

// TestFacadeConstructors exercises every facade constructor: each must
// build a working policy whose Name round-trips where a name scheme
// exists, and survive one simulated month.
func TestFacadeConstructors(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 5, JobScale: 0.03})
	run := func(t *testing.T, p schedsearch.Policy) schedsearch.Summary {
		t.Helper()
		sum, _, err := schedsearch.RunMonth(suite, "7/03", schedsearch.SimOptions{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Jobs == 0 {
			t.Fatal("no jobs measured")
		}
		return sum
	}

	t.Run("NewSearchScheduler", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), schedsearch.DefaultLimit1K)
		if p.Name() != "DDS/lxf/dynB" {
			t.Fatalf("name %q, want DDS/lxf/dynB", p.Name())
		}
		run(t, p)
		if p.SearchStats.Decisions == 0 {
			t.Fatal("no search decisions recorded")
		}
	})
	t.Run("FixedBound", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.LDS, schedsearch.HeuristicFCFS,
			schedsearch.FixedBound(100*schedsearch.Hour), 500)
		if p.Name() != "LDS/fcfs/fixB=100h" { // canonical form of "100h"
			t.Fatalf("name %q, want LDS/fcfs/fixB=100h", p.Name())
		}
		run(t, p)
	})
	t.Run("Backfill", func(t *testing.T) {
		if n := schedsearch.FCFSBackfill().Name(); n != "FCFS-backfill" {
			t.Fatalf("name %q", n)
		}
		if n := schedsearch.LXFBackfill().Name(); n != "LXF-backfill" {
			t.Fatalf("name %q", n)
		}
		run(t, schedsearch.FCFSBackfill())
	})
	t.Run("NewLocalScheduler", func(t *testing.T) {
		run(t, schedsearch.NewLocalScheduler(schedsearch.HeuristicLXF, schedsearch.DynamicBound(), 300))
	})
	t.Run("NewHybridScheduler", func(t *testing.T) {
		run(t, schedsearch.NewHybridScheduler(schedsearch.HeuristicLXF, schedsearch.DynamicBound(), 300))
	})
	t.Run("NewFairshareScheduler", func(t *testing.T) {
		inner := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		run(t, schedsearch.NewFairshareScheduler(inner, 0.5))
	})
	t.Run("RuntimeScaledCost", func(t *testing.T) {
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		p.Cost = schedsearch.RuntimeScaledCost(2.0, schedsearch.Hour)
		run(t, p)
	})
	t.Run("NewUserHistoryPredictor", func(t *testing.T) {
		est := schedsearch.NewUserHistoryPredictor()
		p := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
			schedsearch.DynamicBound(), 300)
		sum, _, err := schedsearch.RunMonthWithEstimator(suite, "7/03", schedsearch.SimOptions{}, est, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Jobs == 0 {
			t.Fatal("no jobs measured")
		}
	})
}

// TestFacadeEngine drives the online engine through the facade: a
// virtual-clock engine scheduling with the paper's best policy.
func TestFacadeEngine(t *testing.T) {
	vc := schedsearch.NewVirtualClock()
	pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 100)
	e, err := schedsearch.NewEngine(schedsearch.EngineConfig{
		Capacity: 16, Policy: pol, Clock: vc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(schedsearch.Job{Nodes: 8, Runtime: 1800, Request: 1800}); err != nil {
			t.Fatal(err)
		}
	}
	vc.Run()
	m := e.Metrics()
	if m.Jobs.Done != 4 {
		t.Fatalf("%d jobs done, want 4", m.Jobs.Done)
	}
	if m.Policy != "DDS/lxf/dynB" {
		t.Fatalf("policy %q", m.Policy)
	}
}
