package schedsearch_test

import (
	"testing"

	"schedsearch"
)

// FuzzParsePolicy asserts the parse → Name → parse round trip: any
// string ParsePolicy accepts must produce a policy whose canonical
// Name parses back to the same policy, and the parser must never
// panic on arbitrary input.
func FuzzParsePolicy(f *testing.F) {
	for _, name := range allPolicies {
		f.Add(name)
	}
	for _, seed := range []string{
		"DDS/lxf/fixB=100h", "LDS/fcfs/30m", "DFS/lxf/90s", "DDS/fcfs/0h",
		"DDS/lxf/", "DDS//dynB", "//", "DDS/lxf/99999999999999999999h",
		"dds/LXF/DYNB", " FCFS-backfill", "FCFS-backfill ",
		"CDDS/lxf/dynB", "ADDS/fcfs/dynB", "CDDS/fcfs/fixB=100h",
		"ADDS/lxf/30m", "cdds/lxf/dynB", "ADDS//dynB",
		"meta(DDS/lxf/dynB)", "meta(DDS/lxf/dynB,FCFS-backfill)",
		"meta(DDS/lxf/fixB=100h,LDS/fcfs/dynB,LXF-backfill)",
		"meta()", "meta(", "meta(DDS/lxf/dynB", "meta(DDS/lxf/dynB,)",
		"meta(,)", "meta(meta(DDS/lxf/dynB))", "meta(DDS/lxf/dynB))",
		"META(DDS/lxf/dynB)", "meta (DDS/lxf/dynB)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		pol, err := schedsearch.ParsePolicy(s, 100)
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}
		name := pol.Name()
		again, err := schedsearch.ParsePolicy(name, 100)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) ok but canonical name %q rejected: %v", s, name, err)
		}
		if got := again.Name(); got != name {
			t.Fatalf("canonical name not a fixed point: %q -> %q -> %q", s, name, got)
		}
	})
}
