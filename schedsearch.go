// Package schedsearch is a goal-oriented, search-based job scheduler for
// space-shared parallel machines, plus the trace-driven simulation
// infrastructure to evaluate it — a reproduction of Vasupongayya,
// Chiang & Massey, "Search-based Job Scheduling for Parallel Computer
// Workloads" (IEEE Cluster 2005).
//
// The package is a facade over the internal implementation:
//
//   - Workload synthesis calibrated to the paper's published NCSA IA-64
//     monthly statistics (NewSuite).
//   - An event-driven simulator for non-preemptive policies (RunMonth).
//   - Priority-backfill baselines (FCFS-, LXF-, SJF-backfill and
//     published variants) via ParsePolicy or the policy constructors.
//   - The paper's contribution: discrepancy-search schedulers (LDS/DDS
//     over fcfs/lxf branching with fixed or dynamic target wait bounds)
//     via NewSearchScheduler.
//
// A minimal session:
//
//	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1})
//	pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
//		schedsearch.DynamicBound(), 1000)
//	sum, _, err := schedsearch.RunMonth(suite, "7/03", schedsearch.SimOptions{}, pol)
package schedsearch

import (
	"fmt"
	"strings"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/metasched"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/predict"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// Re-exported model types.
type (
	// Job is one rigid parallel job (nodes, actual and requested
	// runtime, submit time).
	Job = job.Job
	// Policy is a non-preemptive scheduling policy driven by the
	// simulator.
	Policy = sim.Policy
	// Snapshot is the queue/machine state a policy sees at a decision
	// point.
	Snapshot = sim.Snapshot
	// WaitingJob is a queued job as visible to a policy.
	WaitingJob = sim.WaitingJob
	// Result is a completed simulation run.
	Result = sim.Result
	// Summary holds the paper's headline measures of a run.
	Summary = metrics.Summary
	// Excess is the excessive-wait summary w.r.t. a threshold.
	Excess = metrics.Excess
	// Suite is a generated 10-month workload suite.
	Suite = workload.Suite
	// Month is one generated monthly workload.
	Month = workload.Month
	// SimOptions selects load scaling and runtime-estimate visibility.
	SimOptions = workload.SimOptions
	// SearchScheduler is the paper's search-based policy; its
	// SearchStats field exposes search-effort counters.
	SearchScheduler = core.Scheduler
	// BoundSpec selects the target wait bound of the search objective.
	BoundSpec = core.BoundSpec
	// CostFn customizes the search objective (see RuntimeScaledCost for
	// the paper's future-work variant).
	CostFn = core.CostFn
	// Backfill is the EASY-style priority-backfill policy family.
	Backfill = policy.Backfill
)

// Search algorithm and heuristic selectors.
const (
	LDS            = core.LDS
	DDS            = core.DDS
	ADDS           = core.ADDS
	CDDS           = core.CDDS
	HeuristicFCFS  = core.HeuristicFCFS
	HeuristicLXF   = core.HeuristicLXF
	Hour           = job.Hour
	Day            = job.Day
	DefaultCap     = workload.Capacity
	DefaultLimit1K = 1000
	// AutoWorkers, assigned to SearchScheduler.Workers, runs the search
	// with one worker per CPU. Parallel search commits exactly the
	// schedules sequential search would.
	AutoWorkers = core.AutoWorkers
)

// SuiteConfig mirrors the workload generator configuration.
type SuiteConfig = workload.Config

// NewSuite generates the ten-month synthetic NCSA IA-64 workload suite.
func NewSuite(cfg SuiteConfig) *Suite { return workload.NewSuite(cfg) }

// MonthLabels returns the ten month labels ("6/03" .. "3/04").
func MonthLabels() []string { return workload.MonthLabels() }

// DynamicBound selects the paper's dynB target wait bound.
func DynamicBound() BoundSpec { return core.DynamicBound() }

// FixedBound selects a fixed target wait bound ω in seconds (use
// schedsearch.Hour multiples).
func FixedBound(omega int64) BoundSpec { return core.FixedBound(omega) }

// NewSearchScheduler builds a search-based scheduler; the paper's best
// policy is NewSearchScheduler(DDS, HeuristicLXF, DynamicBound(), 1000).
func NewSearchScheduler(algo core.Algorithm, h core.Heuristic, bound BoundSpec, nodeLimit int) *SearchScheduler {
	return core.New(algo, h, bound, nodeLimit)
}

// RuntimeScaledCost is the paper's future-work objective variant: the
// target wait bound shrinks for short jobs (factor × estimate, floored
// at minBound seconds), further improving short-job service.
func RuntimeScaledCost(factor float64, minBound int64) CostFn {
	return core.RuntimeScaledCost(factor, minBound)
}

// FCFSBackfill returns the paper's FCFS-backfill baseline.
func FCFSBackfill() *Backfill { return policy.FCFSBackfill() }

// LXFBackfill returns the paper's LXF-backfill baseline.
func LXFBackfill() *Backfill { return policy.LXFBackfill() }

// Estimator produces runtime estimates for arriving jobs and learns from
// completions; plug one into RunMonthWithEstimator for the paper's
// runtime-prediction future-work direction.
type Estimator = sim.Estimator

// NewUserHistoryPredictor returns the Tsafrir-style predictor: a job's
// runtime is estimated as the average of its user's two most recent
// actual runtimes, capped at the request.
func NewUserHistoryPredictor() Estimator { return predict.NewUserHistory() }

// NewLocalScheduler returns the pure local-search scheduler (hill
// climbing over queue orderings) with the same objective and budget
// semantics as the complete-search policies.
func NewLocalScheduler(h core.Heuristic, bound BoundSpec, nodeLimit int) *core.LocalScheduler {
	return core.NewLocal(h, bound, nodeLimit)
}

// NewHybridScheduler returns the DDS-seeded local-search scheduler
// (the paper's suggested complete+local combination).
func NewHybridScheduler(h core.Heuristic, bound BoundSpec, nodeLimit int) *core.LocalScheduler {
	return core.NewHybrid(h, bound, nodeLimit)
}

// NewFairshareScheduler wraps a search scheduler with the fairshare
// objective extension: over-served users' slowdown costs are discounted
// with strength alpha, shifting service toward under-served users
// without touching the excessive-wait guarantee.
func NewFairshareScheduler(inner *SearchScheduler, alpha float64) Policy {
	return core.NewFairshare(inner, alpha)
}

// RunMonth simulates one month of the suite under the policy and
// returns the summarized measures alongside the raw result.
func RunMonth(s *Suite, label string, opt SimOptions, p Policy) (Summary, *Result, error) {
	return RunMonthWithEstimator(s, label, opt, nil, p)
}

// RunMonthWithEstimator is RunMonth with a runtime predictor supplying
// the estimates policies plan with (overriding opt.UseRequested).
func RunMonthWithEstimator(s *Suite, label string, opt SimOptions, est Estimator, p Policy) (Summary, *Result, error) {
	in, _, err := s.Input(label, opt)
	if err != nil {
		return Summary{}, nil, err
	}
	in.Estimator = est
	res, err := sim.Run(in, p)
	if err != nil {
		return Summary{}, nil, err
	}
	if err := metrics.CheckConservation(res); err != nil {
		return Summary{}, nil, err
	}
	return metrics.Summarize(res), res, nil
}

// Online serving: the engine drives any Policy against a clock instead
// of a trace, with jobs submitted while it runs (see internal/engine
// and cmd/schedd for the HTTP daemon).
type (
	// Engine is the online scheduling engine.
	Engine = engine.Engine
	// EngineConfig configures NewEngine.
	EngineConfig = engine.Config
	// Clock is the engine's time source (real or virtual).
	Clock = engine.Clock
	// VirtualClock is the deterministic, steppable clock.
	VirtualClock = engine.VirtualClock
	// EngineMetrics is the engine's running report (also the schema
	// schedsim -json emits).
	EngineMetrics = engine.Metrics
)

// NewEngine returns a started online engine for the configuration.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// NewRealClock returns a wall clock running speedup engine seconds per
// wall second (<= 0 means real time).
func NewRealClock(speedup float64) Clock { return engine.NewRealClock(speedup) }

// NewVirtualClock returns a deterministic clock at time zero; time
// moves only when the caller advances it.
func NewVirtualClock() *VirtualClock { return engine.NewVirtualClock() }

// ExcessiveWait computes the excessive-wait summary of a run with
// respect to a threshold in hours (the paper's E^t measures).
func ExcessiveWait(res *Result, thresholdH float64) Excess {
	return metrics.ExcessiveWait(res, thresholdH)
}

// MetaScheduler is the online policy-portfolio meta-scheduler: it
// shadow-simulates every portfolio member at each decision point and
// lets a seeded bandit commit one (see internal/metasched).
type MetaScheduler = metasched.Meta

// MetaConfig tunes the meta-scheduler's bandit, seed and shadow
// budget.
type MetaConfig = metasched.Config

// Bandit kinds for MetaConfig.Kind.
const (
	GreedyBanditKind = metasched.Greedy
	UCBBanditKind    = metasched.UCB
	EXP3BanditKind   = metasched.EXP3
)

// NewMetaScheduler builds a policy-portfolio meta-scheduler over
// distinct member policy instances.
func NewMetaScheduler(members []Policy, cfg MetaConfig) (*MetaScheduler, error) {
	return metasched.New(members, cfg)
}

// ParsePolicy builds a policy from its report name. Backfill policies
// are named "FCFS-backfill", "LXF-backfill", "SJF-backfill",
// "LXFW-backfill", "Selective-backfill", "Relaxed-backfill",
// "Slack-backfill" and "Lookahead"; search policies follow the paper's
// ALGO/HEUR/BOUND scheme, e.g. "DDS/lxf/dynB" or "LDS/fcfs/100h";
// ALGO is one of DDS, LDS, DFS, ADDS or CDDS.
// Fixed bounds accept both the shorthand ("100h", "30m", "90s") and
// the canonical spelling Scheduler.Name emits ("fixB=100h"), and the
// names the built policies report ("LXF&W-backfill",
// "Conservative-backfill(FCFS)", "Maui-default-backfill") are accepted
// as aliases, so ParsePolicy(p.Name()) round-trips for every
// constructible policy (FuzzParsePolicy pins this).
// A portfolio of policies under the online meta-scheduler is spelled
// "meta(SPEC,SPEC,...)" where each SPEC is any base policy name above
// ("meta(DDS/lxf/dynB,LDS/fcfs/dynB,FCFS-backfill)"); use
// ParsePolicyMeta to tune the bandit.
// nodeLimit is the search node budget L (ignored for backfill; applied
// to every member of a portfolio).
func ParsePolicy(name string, nodeLimit int) (Policy, error) {
	return ParsePolicyMeta(name, nodeLimit, MetaConfig{})
}

// ParsePolicyMeta is ParsePolicy with an explicit meta-scheduler
// configuration for meta(...) portfolio specs (ignored for base
// policies).
func ParsePolicyMeta(name string, nodeLimit int, cfg MetaConfig) (Policy, error) {
	if metasched.IsSpec(name) {
		return metasched.Parse(name, nodeLimit, cfg, parseBasePolicy)
	}
	return parseBasePolicy(name, nodeLimit)
}

// parseBasePolicy parses every non-meta policy name (the portfolio
// member grammar).
func parseBasePolicy(name string, nodeLimit int) (Policy, error) {
	switch name {
	case "FCFS-backfill":
		return policy.FCFSBackfill(), nil
	case "LXF-backfill":
		return policy.LXFBackfill(), nil
	case "SJF-backfill":
		return policy.NewBackfill(policy.SJF{}), nil
	case "LXFW-backfill", "LXF&W-backfill": // the policy reports "LXF&W-backfill"
		return policy.NewBackfill(policy.NewLXFW()), nil
	case "Selective-backfill":
		return policy.NewSelectiveBackfill(), nil
	case "Relaxed-backfill":
		return policy.NewRelaxedBackfill(), nil
	case "Slack-backfill":
		return policy.NewSlackBackfill(), nil
	case "Lookahead":
		return policy.NewLookahead(), nil
	case "Conservative-backfill", "Conservative-backfill(FCFS)":
		return policy.ConservativeBackfill(policy.FCFS{}), nil
	case "Maui-backfill", "Maui-default-backfill":
		return policy.NewWeightedBackfill(policy.MauiDefault()), nil
	case "MultiQueue-backfill":
		return policy.NewMultiQueue(), nil
	}

	parts := strings.Split(name, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("schedsearch: unknown policy %q", name)
	}
	var algo core.Algorithm
	switch parts[0] {
	case "DDS":
		algo = core.DDS
	case "LDS":
		algo = core.LDS
	case "DFS":
		algo = core.DFS
	case "ADDS":
		algo = core.ADDS
	case "CDDS":
		algo = core.CDDS
	default:
		return nil, fmt.Errorf("schedsearch: unknown search algorithm %q", parts[0])
	}
	var heur core.Heuristic
	switch parts[1] {
	case "fcfs":
		heur = core.HeuristicFCFS
	case "lxf":
		heur = core.HeuristicLXF
	default:
		return nil, fmt.Errorf("schedsearch: unknown branching heuristic %q", parts[1])
	}
	bound, err := core.ParseBound(parts[2])
	if err != nil {
		return nil, fmt.Errorf("schedsearch: %w", err)
	}
	return core.New(algo, heur, bound, nodeLimit), nil
}
