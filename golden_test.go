package schedsearch_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedsearch"
	"schedsearch/internal/engine"
	"schedsearch/internal/metrics"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenRun reproduces the `schedsim -json` pipeline in-process at
// reduced scale and returns the serialized metrics with the
// wall-clock-dependent fields zeroed (search timing varies run to run;
// everything else is bit-deterministic).
func goldenRun(t *testing.T, month, polName string) []byte {
	t.Helper()
	suite := workload.NewSuite(workload.Config{Seed: 1, JobScale: 0.05})
	in, _, err := suite.Input(month, workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := schedsearch.ParsePolicy(polName, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckRecords(in.Capacity, in.Jobs, res.Records); err != nil {
		t.Fatal(err)
	}
	m := engine.OfflineMetrics(res, metrics.Summarize(res), pol)
	m.Engine.SearchWallMs = 0
	m.Engine.SearchSpeedup = 0
	m.Engine.AvgDecideMs = 0
	m.Engine.MaxDecideMs = 0
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraces pins the complete `schedsim -json` output for three
// seeded months under the paper's baseline and best policies. Any
// schedule drift — a changed start time anywhere in the month shifts
// the waits, slowdowns and queue integrals — fails the diff. Run with
// -update after an intended behavior change.
func TestGoldenTraces(t *testing.T) {
	months := []string{"7/03", "10/03", "1/04"}
	policies := []string{"FCFS-backfill", "LXF-backfill", "DDS/lxf/dynB"}
	for _, month := range months {
		for _, polName := range policies {
			name := strings.NewReplacer("/", "_").Replace(polName + "-" + month)
			t.Run(name, func(t *testing.T) {
				got := goldenRun(t, month, polName)
				path := filepath.Join("testdata", "golden", name+".json")
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run `go test -run TestGoldenTraces -update .` to create)", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("golden trace drift for %s on month %s.\n--- got ---\n%s--- want (%s) ---\n%s"+
						"If the schedule change is intended, refresh with `go test -run TestGoldenTraces -update .`",
						polName, month, got, path, want)
				}
			})
		}
	}
}
