package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/metrics"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
)

// runCDDSCarry drives one suite month under CDDS with or without the
// carried climbing reference, with the schedule oracle riding along so
// every commit is independently validated (no oversubscription, no
// preemption, conservation, monotone events).
func runCDDSCarry(t *testing.T, suite *schedsearch.Suite, month string, carry bool) (*sim.Result, core.Stats) {
	t.Helper()
	in, _, err := suite.Input(month, schedsearch.SimOptions{TargetLoad: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.New(in.Capacity)
	in.Observer = orc
	sch := core.New(core.CDDS, core.HeuristicLXF, core.DynamicBound(), 24)
	sch.CarryClimb = carry
	res, err := sim.Run(in, sch)
	if err != nil {
		t.Fatalf("%s carry=%v: %v", month, carry, err)
	}
	if err := orc.Final(); err != nil {
		t.Fatalf("%s carry=%v: oracle: %v", month, carry, err)
	}
	return res, sch.SearchStats
}

// TestCDDSCarrySuiteDifferential is the carry-across-decisions
// differential: CDDS with CarryClimb is a different search (the
// reference ordering persists), so its schedules may legitimately
// diverge from restart-CDDS — but every commit must stay valid under
// the independent oracle, the run must be bit-reproducible, and the
// carry must actually engage. The restart twin runs the same months so
// the test reports the NodesToBest effect the bench note quantifies.
func TestCDDSCarrySuiteDifferential(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	var ntbRestart, ntbCarry int64
	for _, month := range []string{"7/03", "10/03", "1/04"} {
		restartRes, restartStats := runCDDSCarry(t, suite, month, false)
		carryRes, carryStats := runCDDSCarry(t, suite, month, true)
		carryRes2, carryStats2 := runCDDSCarry(t, suite, month, true)

		if carryStats.CarryDecisions == 0 {
			t.Errorf("%s: carry never engaged", month)
		}
		if restartStats.CarryDecisions != 0 {
			t.Errorf("%s: restart run recorded %d carry decisions", month, restartStats.CarryDecisions)
		}

		// Determinism: two identical carry runs commit identical
		// schedules with identical effort.
		if len(carryRes.Records) != len(carryRes2.Records) {
			t.Fatalf("%s: carry reruns completed %d vs %d jobs", month, len(carryRes.Records), len(carryRes2.Records))
		}
		for i := range carryRes.Records {
			a, b := carryRes.Records[i], carryRes2.Records[i]
			if a.Job.ID != b.Job.ID || a.Start != b.Start || a.End != b.End {
				t.Fatalf("%s: carry rerun diverges at record %d: %+v vs %+v", month, i, a, b)
			}
		}
		if carryStats != carryStats2 {
			// WallNs differs between runs by nature; compare the
			// deterministic counters.
			if carryStats.Nodes != carryStats2.Nodes || carryStats.Leaves != carryStats2.Leaves ||
				carryStats.NodesToBest != carryStats2.NodesToBest ||
				carryStats.CarryDecisions != carryStats2.CarryDecisions {
				t.Fatalf("%s: carry rerun effort diverges: %+v vs %+v", month, carryStats, carryStats2)
			}
		}

		// Both variants schedule the same job set to completion.
		if len(carryRes.Records) != len(restartRes.Records) {
			t.Fatalf("%s: carry completed %d jobs, restart %d", month, len(carryRes.Records), len(restartRes.Records))
		}

		carrySum, restartSum := metrics.Summarize(carryRes), metrics.Summarize(restartRes)
		t.Logf("%s: restart ntb=%d excessless-cost=%.1f | carry ntb=%d cost=%.1f (carried %d/%d decisions)",
			month, restartStats.NodesToBest, restartSum.AvgBoundedSlowdown,
			carryStats.NodesToBest, carrySum.AvgBoundedSlowdown,
			carryStats.CarryDecisions, carryStats.Decisions)
		ntbRestart += restartStats.NodesToBest
		ntbCarry += carryStats.NodesToBest
	}
	t.Logf("nodes-to-best: restart %d, carry %d", ntbRestart, ntbCarry)
}
