package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/sim"
)

// mirrorPolicy drives a month with the parallel scheduler while running
// a sequential twin on every snapshot, failing the test on the first
// decision where the two diverge in committed starts, best cost or
// planned starts. Because the parallel decisions are the ones the
// simulator commits, any divergence would also compound into different
// snapshots — identical month-end stats prove equivalence end to end.
type mirrorPolicy struct {
	t         *testing.T
	seq, par  *core.Scheduler
	decisions int
}

func (m *mirrorPolicy) Name() string { return m.par.Name() }

func (m *mirrorPolicy) Decide(snap *sim.Snapshot) []int {
	m.decisions++
	seqStarts := append([]int(nil), m.seq.Decide(snap)...)
	parStarts := m.par.Decide(snap)
	if len(seqStarts) != len(parStarts) {
		m.t.Fatalf("%s decision %d: parallel starts %v, sequential %v",
			m.par.Name(), m.decisions, parStarts, seqStarts)
	}
	for i := range seqStarts {
		if seqStarts[i] != parStarts[i] {
			m.t.Fatalf("%s decision %d: parallel starts %v, sequential %v",
				m.par.Name(), m.decisions, parStarts, seqStarts)
		}
	}
	if m.seq.LastCost() != m.par.LastCost() {
		m.t.Fatalf("%s decision %d: parallel cost %v, sequential %v",
			m.par.Name(), m.decisions, m.par.LastCost(), m.seq.LastCost())
	}
	seqPlan, parPlan := m.seq.LastPlan(), m.par.LastPlan()
	if len(seqPlan) != len(parPlan) {
		m.t.Fatalf("%s decision %d: plan lengths %d vs %d",
			m.par.Name(), m.decisions, len(parPlan), len(seqPlan))
	}
	for i := range seqPlan {
		if seqPlan[i] != parPlan[i] {
			m.t.Fatalf("%s decision %d: plan[%d] %+v parallel, %+v sequential",
				m.par.Name(), m.decisions, i, parPlan[i], seqPlan[i])
		}
	}
	return parStarts
}

// TestParallelSearchSuiteDifferential is the tentpole acceptance test:
// across every suite month and both discrepancy algorithms, parallel
// Decide must commit bit-identical schedules to sequential Decide on
// every decision point of a closed-loop simulation, with identical
// search-effort accounting. The node budget is kept small enough that
// budget cutoffs (the shard's hardest case) occur routinely. Run with
// -race this also stresses the worker pool.
func TestParallelSearchSuiteDifferential(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	totalHits := 0
	for _, algo := range []core.Algorithm{core.DDS, core.LDS} {
		for _, month := range schedsearch.MonthLabels() {
			seq := core.New(algo, core.HeuristicLXF, core.DynamicBound(), 24)
			par := core.New(algo, core.HeuristicLXF, core.DynamicBound(), 24)
			par.Workers = 4
			m := &mirrorPolicy{t: t, seq: seq, par: par}
			sum, _, err := schedsearch.RunMonth(suite, month, schedsearch.SimOptions{TargetLoad: 0.95}, m)
			if err != nil {
				t.Fatalf("%s %s: %v", algo, month, err)
			}
			if sum.Jobs == 0 {
				t.Fatalf("%s %s: no jobs measured", algo, month)
			}
			ss, ps := seq.SearchStats, par.SearchStats
			if ss.Nodes != ps.Nodes || ss.Leaves != ps.Leaves ||
				ss.BudgetHits != ps.BudgetHits || ss.Exhausted != ps.Exhausted {
				t.Fatalf("%s %s: effort nodes/leaves/hits/exhausted %d/%d/%d/%d parallel, %d/%d/%d/%d sequential",
					algo, month, ps.Nodes, ps.Leaves, ps.BudgetHits, ps.Exhausted,
					ss.Nodes, ss.Leaves, ss.BudgetHits, ss.Exhausted)
			}
			totalHits += ps.BudgetHits
		}
	}
	if totalHits == 0 {
		t.Error("no budget cutoffs exercised across the whole suite; the shard's cutoff path went untested")
	}
}
