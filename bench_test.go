// Benchmarks regenerating each table and figure of the paper at reduced
// scale (months at 10-15% size, search budgets scaled to match), plus
// the ablation benchmarks called out in DESIGN.md. Run the full-scale
// reproduction with cmd/experiments instead; these benches exist to
// track the cost of each experiment and of the scheduler inner loops.
package schedsearch_test

import (
	"io"
	"testing"

	"schedsearch"
	"schedsearch/internal/cluster"
	"schedsearch/internal/core"
	"schedsearch/internal/experiments"
	"schedsearch/internal/job"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// benchCfg is the scaled-down experiment configuration shared by the
// per-figure benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Scale: 0.1, LimitScale: 0.1}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable3JobMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunTable3(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RuntimeDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunTable4(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1dTreeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunFig1d(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2FixedBound(b *testing.B) {
	cfg := benchCfg()
	cfg.Months = []string{"6/03", "12/03"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3OriginalLoad(b *testing.B) {
	cfg := benchCfg()
	cfg.Months = []string{"6/03", "7/03", "1/04"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4HighLoad(b *testing.B) {
	cfg := benchCfg()
	cfg.Months = []string{"6/03", "7/03", "1/04"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5JobClasses(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6NodeBudget(b *testing.B) {
	cfg := benchCfg()
	cfg.LimitScale = 0.02 // L sweeps 20..2000 at bench scale
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SearchAlgos(b *testing.B) {
	cfg := benchCfg()
	cfg.Months = []string{"6/03", "1/04"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8RequestedRuntimes(b *testing.B) {
	cfg := benchCfg()
	cfg.Months = []string{"6/03", "1/04"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Result(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md Section 5) --------------------------

// benchProfile builds a realistically loaded profile: ~40 running jobs
// on a 128-node machine.
func benchProfile() (*cluster.Profile, []struct {
	n int
	d job.Duration
}) {
	prof := cluster.New(128, 0)
	placements := []struct {
		n int
		d job.Duration
	}{}
	sizes := []int{1, 1, 2, 4, 8, 16, 32, 64}
	for i := 0; i < 40; i++ {
		n := sizes[i%len(sizes)]
		d := job.Duration(600 + 977*int64(i)%43200)
		t := prof.EarliestFit(job.Time(i*60), n, d)
		prof.Place(t, n, d)
		placements = append(placements, struct {
			n int
			d job.Duration
		}{n, d})
	}
	return prof, placements
}

// BenchmarkProfilePlaceUndo measures the search inner loop: earliest-fit
// place followed by LIFO undo on a loaded profile (DESIGN.md ablation 1,
// the chosen design).
func BenchmarkProfilePlaceUndo(b *testing.B) {
	prof, _ := benchProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, pl := prof.PlaceEarliest(0, 16, 3600)
		_ = t
		prof.Undo(pl)
	}
}

// BenchmarkProfileCopyPlace measures the rejected alternative: cloning
// the profile before each speculative placement.
func BenchmarkProfileCopyPlace(b *testing.B) {
	prof, _ := benchProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := prof.Clone()
		c.PlaceEarliest(0, 16, 3600)
	}
}

// BenchmarkEarliestFit isolates the availability query.
func BenchmarkEarliestFit(b *testing.B) {
	prof, _ := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof.EarliestFit(0, 100, 7200)
	}
}

// BenchmarkAblationOmegaZero contrasts the paper's dynB bound with the
// degenerate ω=0 objective (pure average-wait minimization, which the
// paper reports destroys the maximum wait) — DESIGN.md ablation 4.
func BenchmarkAblationOmegaZero(b *testing.B) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	for _, bench := range []struct {
		name  string
		bound schedsearch.BoundSpec
	}{
		{"dynB", schedsearch.DynamicBound()},
		{"omega0", schedsearch.FixedBound(0)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var maxWait float64
			for i := 0; i < b.N; i++ {
				sch := schedsearch.NewSearchScheduler(schedsearch.DDS,
					schedsearch.HeuristicLXF, bench.bound, 100)
				sum, _, err := schedsearch.RunMonth(suite, "7/03",
					schedsearch.SimOptions{TargetLoad: 0.9}, sch)
				if err != nil {
					b.Fatal(err)
				}
				maxWait = sum.MaxWaitH
			}
			b.ReportMetric(maxWait, "maxWaitH")
		})
	}
}

// BenchmarkAblationReservations sweeps the backfill reservation count
// (the paper uses 1 and reports more does not help) — DESIGN.md
// ablation 5.
func BenchmarkAblationReservations(b *testing.B) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	for _, r := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "r1", 2: "r2", 4: "r4"}[r], func(b *testing.B) {
			var avgWait float64
			for i := 0; i < b.N; i++ {
				pol := &policy.Backfill{Priority: policy.FCFS{}, Reservations: r}
				sum, _, err := schedsearch.RunMonth(suite, "7/03",
					schedsearch.SimOptions{TargetLoad: 0.9}, pol)
				if err != nil {
					b.Fatal(err)
				}
				avgWait = sum.AvgWaitH
			}
			b.ReportMetric(avgWait, "avgWaitH")
		})
	}
}

// --- Scheduler inner-loop benchmarks -------------------------------------

// benchSnapshot builds a contended decision point with the given queue
// depth.
func benchSnapshot(queueLen int) *sim.Snapshot {
	snap := &sim.Snapshot{Now: 100000, Capacity: 128, FreeNodes: 128}
	// 30 running jobs occupy 100 nodes with staggered ends.
	used := 0
	for i := 0; i < 30 && used < 100; i++ {
		n := 1 + (i*7)%8
		if used+n > 100 {
			n = 100 - used
		}
		used += n
		snap.Running = append(snap.Running, sim.RunningJob{
			ID: 1000 + i, Nodes: n, Start: 0,
			PredictedEnd: snap.Now + job.Duration(300+i*977%21600),
		})
	}
	snap.FreeNodes = 128 - used
	for i := 0; i < queueLen; i++ {
		est := job.Duration(300 + (i*2311)%43200)
		snap.Queue = append(snap.Queue, sim.WaitingJob{
			Job: job.Job{
				ID:      i + 1,
				Submit:  snap.Now - job.Time(60+(i*3571)%36000),
				Nodes:   1 + (i*13)%64,
				Runtime: est, Request: est,
			},
			Estimate: est,
			QueuePos: i,
		})
	}
	return snap
}

// BenchmarkSearchDecision measures one scheduling decision of the
// search-based policy at the paper's L=1K on a 30-job queue — the
// quantity the paper reports as 30-65 ms on 2005 hardware.
func BenchmarkSearchDecision(b *testing.B) {
	for _, bench := range []struct {
		name string
		algo core.Algorithm
	}{{"DDS", core.DDS}, {"LDS", core.LDS}} {
		b.Run(bench.name, func(b *testing.B) {
			snap := benchSnapshot(30)
			sch := core.New(bench.algo, core.HeuristicLXF, core.DynamicBound(), 1000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sch.Decide(snap)
			}
			b.ReportMetric(float64(sch.SearchStats.Nodes)/float64(b.N), "nodes/decision")
		})
	}
}

// BenchmarkParallelSearchDecision measures the same decision with the
// parallel search at one worker per CPU. The committed schedules are
// identical to the sequential ones; only wall time changes. On a
// single-CPU machine this degenerates to the sequential path. See
// cmd/searchbench for the standalone harness emitting BENCH_search.json.
func BenchmarkParallelSearchDecision(b *testing.B) {
	for _, bench := range []struct {
		name string
		algo core.Algorithm
	}{{"DDS", core.DDS}, {"LDS", core.LDS}} {
		b.Run(bench.name, func(b *testing.B) {
			snap := benchSnapshot(30)
			sch := core.New(bench.algo, core.HeuristicLXF, core.DynamicBound(), 1000)
			sch.Workers = core.AutoWorkers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sch.Decide(snap)
			}
			b.ReportMetric(sch.SearchStats.Speedup(), "speedup")
		})
	}
}

// BenchmarkBackfillDecision measures one EASY-backfill decision on the
// same queue for comparison.
func BenchmarkBackfillDecision(b *testing.B) {
	snap := benchSnapshot(30)
	pol := policy.LXFBackfill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(snap)
	}
}

// BenchmarkWorkloadGeneration measures synthesizing the full ten-month
// suite at paper scale.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.NewSuite(workload.Config{Seed: uint64(i + 1)})
	}
}
