module schedsearch

go 1.22
