package schedsearch_test

import (
	"reflect"
	"testing"

	"schedsearch"
	"schedsearch/internal/env"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// recordingPolicy wraps a policy and keeps a copy of every decision it
// commits, so the exact start sequence can be replayed through the
// environment.
type recordingPolicy struct {
	inner     sim.Policy
	decisions [][]int
}

func (r *recordingPolicy) Name() string { return r.inner.Name() }

func (r *recordingPolicy) Decide(snap *sim.Snapshot) []int {
	starts := r.inner.Decide(snap)
	r.decisions = append(r.decisions, append([]int(nil), starts...))
	return starts
}

// TestEnvReplaySuiteDifferential is the environment-export keystone: an
// agent that feeds the engine's own decisions back through the
// step/observe/act API must reproduce the native sim.Run schedule
// bit-identically — once via "start" actions replaying a recorded run,
// and once via "policy" actions delegating each decision to the same
// named policy. Run under -race.
func TestEnvReplaySuiteDifferential(t *testing.T) {
	const spec = "DDS/lxf/dynB"
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	opts := workload.SimOptions{TargetLoad: 0.95}
	for _, month := range []string{"7/03", "10/03", "1/04"} {
		month := month
		t.Run(month, func(t *testing.T) {
			// Native run, recording every committed decision.
			in, _, err := suite.Input(month, opts)
			if err != nil {
				t.Fatal(err)
			}
			pol, err := schedsearch.ParsePolicy(spec, 64)
			if err != nil {
				t.Fatal(err)
			}
			rec := &recordingPolicy{inner: pol}
			native, err := sim.Run(in, rec)
			if err != nil {
				t.Fatal(err)
			}
			if len(native.Records) == 0 {
				t.Fatal("native run completed no jobs")
			}

			check := func(name string, act func(i int, obs *env.Observation) env.Action) {
				inE, _, err := suite.Input(month, opts)
				if err != nil {
					t.Fatal(err)
				}
				e, err := env.New(env.Config{
					Input: inE,
					Label: rec.Name(),
					Resolve: func(n string) (sim.Policy, error) {
						return schedsearch.ParsePolicy(n, 64)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				obs, err := e.Reset()
				if err != nil {
					t.Fatal(err)
				}
				steps := 0
				for obs != nil {
					next, _, done, err := e.Step(act(steps, obs))
					if err != nil {
						t.Fatalf("%s: step %d: %v", name, steps, err)
					}
					steps++
					if done {
						break
					}
					obs = next
				}
				if steps != len(rec.decisions) {
					t.Fatalf("%s: env made %d decisions, native %d", name, steps, len(rec.decisions))
				}
				res := e.Result()
				if res == nil {
					t.Fatalf("%s: no result after done", name)
				}
				if !reflect.DeepEqual(res.Records, native.Records) {
					t.Fatalf("%s: replayed records diverge from native run", name)
				}
				if res.Decisions != native.Decisions ||
					res.AvgQueueLen != native.AvgQueueLen ||
					res.MaxQueueLen != native.MaxQueueLen {
					t.Fatalf("%s: queue statistics diverge: env {%d %v %d} native {%d %v %d}",
						name, res.Decisions, res.AvgQueueLen, res.MaxQueueLen,
						native.Decisions, native.AvgQueueLen, native.MaxQueueLen)
				}
				if e.TotalReward() >= 0 {
					t.Errorf("%s: total reward %v, want negative cost", name, e.TotalReward())
				}
			}

			// (1) Replay the recorded decisions verbatim as "start" actions.
			check("start-replay", func(i int, _ *env.Observation) env.Action {
				if i >= len(rec.decisions) {
					t.Fatalf("env surfaced more decisions than the native run made")
				}
				return env.Action{Kind: "start", Start: rec.decisions[i]}
			})
			// (2) Delegate every decision to the same named policy.
			check("policy-delegate", func(int, *env.Observation) env.Action {
				return env.Action{Kind: "policy", Policy: spec}
			})
		})
	}
}
