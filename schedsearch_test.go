package schedsearch_test

import (
	"strings"
	"testing"

	"schedsearch"
)

func TestParsePolicyNames(t *testing.T) {
	good := []string{
		"FCFS-backfill", "LXF-backfill", "SJF-backfill", "LXFW-backfill",
		"Selective-backfill", "Relaxed-backfill", "Slack-backfill", "Lookahead",
		"Conservative-backfill",
		"DDS/lxf/dynB", "LDS/fcfs/dynB", "DDS/fcfs/100h", "LDS/lxf/50h",
	}
	for _, name := range good {
		p, err := schedsearch.ParsePolicy(name, 1000)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("ParsePolicy(%q) returned nil", name)
		}
	}
	bad := []string{"", "XYZ", "DDS/lxf", "DDS/xyz/dynB", "XXX/lxf/dynB", "DDS/lxf/banana", "DDS/lxf/-5h"}
	for _, name := range bad {
		if _, err := schedsearch.ParsePolicy(name, 1000); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", name)
		}
	}
}

func TestParsePolicyRoundTripsNames(t *testing.T) {
	for _, name := range []string{"FCFS-backfill", "LXF-backfill", "DDS/lxf/dynB", "LDS/fcfs/100h"} {
		p, err := schedsearch.ParsePolicy(name, 500)
		if err != nil {
			t.Fatal(err)
		}
		want := name
		if strings.Contains(name, "100h") {
			want = "LDS/fcfs/fixB=100h" // canonical form
		}
		if got := p.Name(); got != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", name, got, want)
		}
	}
}

func TestRunMonthEndToEnd(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	pol := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 500)
	sum, res, err := schedsearch.RunMonth(suite, "6/03", schedsearch.SimOptions{}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs == 0 {
		t.Fatal("no jobs measured")
	}
	if sum.Policy != "DDS/lxf/dynB" {
		t.Errorf("policy = %q", sum.Policy)
	}
	if len(res.Records) < sum.Jobs {
		t.Errorf("records %d < measured %d", len(res.Records), sum.Jobs)
	}
	if pol.SearchStats.Decisions == 0 {
		t.Error("search never ran")
	}
	e := schedsearch.ExcessiveWait(res, sum.MaxWaitH)
	if e.Count != 0 {
		t.Errorf("excess w.r.t. own max: %+v", e)
	}
}

func TestRunMonthUnknownMonth(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.05})
	if _, _, err := schedsearch.RunMonth(suite, "4/03", schedsearch.SimOptions{},
		schedsearch.FCFSBackfill()); err == nil {
		t.Error("unknown month accepted")
	}
}

func TestMonthLabels(t *testing.T) {
	labels := schedsearch.MonthLabels()
	if len(labels) != 10 || labels[0] != "6/03" || labels[9] != "3/04" {
		t.Errorf("labels = %v", labels)
	}
}

func TestCustomCostFnRuns(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 1, JobScale: 0.1})
	sch := schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
		schedsearch.DynamicBound(), 500)
	sch.Cost = schedsearch.RuntimeScaledCost(4, schedsearch.Hour)
	sum, _, err := schedsearch.RunMonth(suite, "6/03", schedsearch.SimOptions{}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs == 0 {
		t.Fatal("no jobs measured")
	}
}
