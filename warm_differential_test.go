package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/core"
	"schedsearch/internal/sim"
)

// warmMirrorPolicy drives a month with a warm-started scheduler while a
// cold twin decides every snapshot, failing on the first decision where
// they diverge in committed starts, best cost or planned starts. The
// warm decisions are the ones the simulator commits, so a divergence
// would compound into different snapshots — identical month-end stats
// prove warm-start equivalence end to end.
type warmMirrorPolicy struct {
	t          *testing.T
	cold, warm *core.Scheduler
	decisions  int
}

func (m *warmMirrorPolicy) Name() string { return m.warm.Name() }

func (m *warmMirrorPolicy) Decide(snap *sim.Snapshot) []int {
	m.decisions++
	coldStarts := append([]int(nil), m.cold.Decide(snap)...)
	warmStarts := m.warm.Decide(snap)
	if len(coldStarts) != len(warmStarts) {
		m.t.Fatalf("%s decision %d: warm starts %v, cold %v",
			m.warm.Name(), m.decisions, warmStarts, coldStarts)
	}
	for i := range coldStarts {
		if coldStarts[i] != warmStarts[i] {
			m.t.Fatalf("%s decision %d: warm starts %v, cold %v",
				m.warm.Name(), m.decisions, warmStarts, coldStarts)
		}
	}
	if m.cold.LastCost() != m.warm.LastCost() {
		m.t.Fatalf("%s decision %d: warm cost %v, cold %v",
			m.warm.Name(), m.decisions, m.warm.LastCost(), m.cold.LastCost())
	}
	coldPlan, warmPlan := m.cold.LastPlan(), m.warm.LastPlan()
	if len(coldPlan) != len(warmPlan) {
		m.t.Fatalf("%s decision %d: plan lengths %d vs %d",
			m.warm.Name(), m.decisions, len(warmPlan), len(coldPlan))
	}
	for i := range coldPlan {
		if coldPlan[i] != warmPlan[i] {
			m.t.Fatalf("%s decision %d: plan[%d] %+v warm, %+v cold",
				m.warm.Name(), m.decisions, i, warmPlan[i], coldPlan[i])
		}
	}
	return warmStarts
}

// TestWarmStartSuiteDifferential is the keystone acceptance test of the
// incremental search: across every suite month, warm-started Decide
// must commit bit-identical schedules to cold Decide at equal effective
// budget on every decision point of a closed-loop simulation, with
// identical enumeration counters — while reaching the best schedule in
// no more nodes than cold search ever does. DDS and CDDS cover the
// whole suite; LDS and ADDS ride two months each to bound runtime.
func TestWarmStartSuiteDifferential(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	months := map[core.Algorithm][]string{
		core.DDS:  schedsearch.MonthLabels(),
		core.CDDS: schedsearch.MonthLabels(),
		core.LDS:  {"7/03", "1/04"},
		core.ADDS: {"7/03", "1/04"},
	}
	var ntbCold, ntbWarm int64
	for _, algo := range []core.Algorithm{core.DDS, core.CDDS, core.LDS, core.ADDS} {
		for _, month := range months[algo] {
			cold := core.New(algo, core.HeuristicLXF, core.DynamicBound(), 24)
			warm := core.New(algo, core.HeuristicLXF, core.DynamicBound(), 24)
			warm.WarmStart = true
			m := &warmMirrorPolicy{t: t, cold: cold, warm: warm}
			sum, _, err := schedsearch.RunMonth(suite, month, schedsearch.SimOptions{TargetLoad: 0.95}, m)
			if err != nil {
				t.Fatalf("%s %s: %v", algo, month, err)
			}
			if sum.Jobs == 0 {
				t.Fatalf("%s %s: no jobs measured", algo, month)
			}
			cs, ws := cold.SearchStats, warm.SearchStats
			if cs.Nodes != ws.Nodes || cs.Leaves != ws.Leaves ||
				cs.BudgetHits != ws.BudgetHits || cs.Exhausted != ws.Exhausted {
				t.Fatalf("%s %s: effort nodes/leaves/hits/exhausted %d/%d/%d/%d warm, %d/%d/%d/%d cold",
					algo, month, ws.Nodes, ws.Leaves, ws.BudgetHits, ws.Exhausted,
					cs.Nodes, cs.Leaves, cs.BudgetHits, cs.Exhausted)
			}
			if ws.NodesToBest > cs.NodesToBest {
				t.Errorf("%s %s: warm nodes-to-best %d exceeds cold %d",
					algo, month, ws.NodesToBest, cs.NodesToBest)
			}
			if ws.WarmDecisions == 0 {
				t.Errorf("%s %s: no decision was ever seeded", algo, month)
			}
			ntbCold += cs.NodesToBest
			ntbWarm += ws.NodesToBest
		}
	}
	if ntbWarm >= ntbCold {
		t.Errorf("warm start saved nothing: nodes-to-best %d warm, %d cold", ntbWarm, ntbCold)
	}
	t.Logf("nodes-to-best: cold %d, warm %d (%.2fx fewer)",
		ntbCold, ntbWarm, float64(ntbCold)/float64(max64(ntbWarm, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestWarmParallelSuiteDifferential composes the two equivalences: a
// warm-started parallel scheduler against a warm-started sequential one
// over a pair of months, NodesToBest included (the parallel merge
// replays the sequential improvement order exactly).
func TestWarmParallelSuiteDifferential(t *testing.T) {
	suite := schedsearch.NewSuite(schedsearch.SuiteConfig{Seed: 6, JobScale: 0.025})
	for _, month := range []string{"7/03", "1/04"} {
		seq := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 24)
		par := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 24)
		seq.WarmStart, par.WarmStart = true, true
		par.Workers = 4
		m := &mirrorPolicy{t: t, seq: seq, par: par}
		if _, _, err := schedsearch.RunMonth(suite, month, schedsearch.SimOptions{TargetLoad: 0.95}, m); err != nil {
			t.Fatalf("%s: %v", month, err)
		}
		if seq.SearchStats.NodesToBest != par.SearchStats.NodesToBest {
			t.Fatalf("%s: nodes-to-best %d parallel, %d sequential",
				month, par.SearchStats.NodesToBest, seq.SearchStats.NodesToBest)
		}
	}
}
