package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/chaos"
	"schedsearch/internal/federation"
	"schedsearch/internal/sim"
)

// TestChaosSoak is the long-running fault-injection soak: many seeds,
// every fault enabled at once, across the policy families, with the
// oracle checking every run (chaos.Run fails on any invariant
// violation). CI runs it under -race; -short cuts the seed count so
// the pre-commit loop stays fast.
func TestChaosSoak(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	policies := []struct {
		name string
		make func() sim.Policy
	}{
		{"FCFS-backfill", func() sim.Policy { return schedsearch.FCFSBackfill() }},
		{"LXF-backfill", func() sim.Policy { return schedsearch.LXFBackfill() }},
		{"DDS-lxf-dynB", func() sim.Policy {
			return schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
				schedsearch.DynamicBound(), 100)
		}},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				res, err := chaos.Run(chaos.Config{
					Seed:   seed,
					Faults: chaos.AllFaults,
					Policy: pol.make,
					Jobs:   100,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (reproduce: chaos.Run with this seed and AllFaults)", seed, err)
				}
				if len(res.Records) == 0 {
					t.Fatalf("seed %d: no jobs completed", seed)
				}
				t.Logf("seed %d: %d completed, %d rejected, %d panics recovered, rebuilt=%v",
					seed, len(res.Records), res.Rejected, res.Panics, res.Rebuilt)
			}
		})
	}
}

// TestChaosSoakFederation soaks the sharded federation under the same
// fault mix: every fault class at once — including the single-shard
// crash-rebuild while the other shards keep scheduling — across the
// placement policies, with oracle.CheckFederation certifying every run
// (conservation across migrations, shard-local allocation, global
// schedule invariants). Run under -race this also hammers the router's
// locking against concurrent shard timers.
func TestChaosSoakFederation(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	placements := []federation.Placement{
		federation.LeastLoaded{}, federation.BestFit{}, federation.HashByUser{},
	}
	totalMigrations := int64(0)
	for _, place := range placements {
		place := place
		t.Run(place.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				res, err := chaos.RunFederation(chaos.FederationConfig{
					Config: chaos.Config{
						Seed:   seed,
						Faults: chaos.AllFaults,
						Policy: func() sim.Policy {
							return schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
								schedsearch.DynamicBound(), 100)
						},
						Jobs: 100,
					},
					Shards:         4,
					Placement:      place,
					RebalanceEvery: 120,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (reproduce: chaos.RunFederation with this seed and AllFaults)", seed, err)
				}
				if len(res.Records) == 0 {
					t.Fatalf("seed %d: no jobs completed", seed)
				}
				if res.RebuiltShard < 0 {
					t.Fatalf("seed %d: crash-rebuild never fired", seed)
				}
				totalMigrations += res.Federation.Migrations
				t.Logf("seed %d: %d completed, %d rejected, shard %d rebuilt, %d migrations",
					seed, len(res.Records), res.Rejected, res.RebuiltShard, res.Federation.Migrations)
			}
		})
	}
	if totalMigrations == 0 {
		t.Error("no migration occurred across the whole soak; the rebalance path went untested")
	}
}

// TestChaosSoakFederationRemote soaks the out-of-process federation:
// every shard is a real engine+HTTP-server process-equivalent with its
// own journal, the router drives them over TCP, and on top of the full
// in-process fault mix one shard process is killed outright and
// restarted from its journal while partition faults (refused
// connections, black-hole timeouts, responses dropped after delivery —
// including mid-migration) hit the wire between the router and a
// seeded shard. chaos.RunFederationRemote fails on any invariant
// violation: an acknowledged job lost, a job admitted on two shards,
// or an oracle violation in the merged schedule.
func TestChaosSoakFederationRemote(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	totalReroutes := int64(0)
	for _, place := range []federation.Placement{
		federation.LeastLoaded{}, federation.HashByUser{},
	} {
		place := place
		t.Run(place.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				res, err := chaos.RunFederationRemote(chaos.RemoteFederationConfig{
					FederationConfig: chaos.FederationConfig{
						Config: chaos.Config{
							Seed:   seed,
							Faults: chaos.AllFaults | chaos.FaultPartition,
							Policy: func() sim.Policy {
								return schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
									schedsearch.DynamicBound(), 100)
							},
							Jobs: 80,
						},
						Shards:         4,
						Placement:      place,
						RebalanceEvery: 120,
					},
					Dir:          t.TempDir(),
					GossipEvery:  45,
					WorkStealing: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (reproduce: chaos.RunFederationRemote with this seed)", seed, err)
				}
				if len(res.Records) == 0 {
					t.Fatalf("seed %d: no jobs completed", seed)
				}
				if res.RebuiltShard < 0 {
					t.Fatalf("seed %d: the shard-process kill/restart never fired", seed)
				}
				totalReroutes += res.Reroutes
				t.Logf("seed %d: %d completed, %d rejected, %d wire-uncertain, shard %d killed+restarted, shard %d partitioned, %d reroutes, %d migrations",
					seed, len(res.Records), res.Rejected, res.Uncertain,
					res.RebuiltShard, res.PartitionedShard, res.Reroutes, res.Federation.Migrations)
			}
		})
	}
	if totalReroutes == 0 {
		t.Error("no submission was ever rerouted across the whole soak; the degraded-routing path went untested")
	}
}

// TestChaosSoakIngest soaks the batched ingest path: seeded client
// fleets pushing bursts past the accept-queue bound, slow clients
// trickling items, disconnects abandoning tickets mid-batch, duplicate
// IDs and a quota storm — all at once, per seed, across policies.
// chaos.RunIngest fails on any invariant violation: a lost or
// double-committed job, an accepted duplicate, queue memory past
// MaxPending (the bounded-backpressure guarantee), or an oracle
// violation in the final schedule.
func TestChaosSoakIngest(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	policies := []struct {
		name string
		make func() sim.Policy
	}{
		{"FCFS-backfill", func() sim.Policy { return schedsearch.FCFSBackfill() }},
		{"DDS-lxf-dynB", func() sim.Policy {
			return schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
				schedsearch.DynamicBound(), 100)
		}},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				res, err := chaos.RunIngest(chaos.IngestConfig{
					Seed:   seed,
					Faults: chaos.AllIngestFaults,
					Policy: pol.make,
					Jobs:   120,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (reproduce: chaos.RunIngest with this seed and AllIngestFaults)", seed, err)
				}
				if res.Shed == 0 {
					t.Fatalf("seed %d: no batch was ever shed; the burst never pressed the bound", seed)
				}
				t.Logf("seed %d: %d committed, %d shed+retried, %d dups rejected, %d quota-rejected, peak pending %d/%d",
					seed, len(res.Records), res.Shed, res.DupRejected,
					len(res.QuotaRejected), res.Stats.PeakPending, res.Stats.MaxPending)
			}
		})
	}
}
