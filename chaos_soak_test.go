package schedsearch_test

import (
	"testing"

	"schedsearch"
	"schedsearch/internal/chaos"
	"schedsearch/internal/sim"
)

// TestChaosSoak is the long-running fault-injection soak: many seeds,
// every fault enabled at once, across the policy families, with the
// oracle checking every run (chaos.Run fails on any invariant
// violation). CI runs it under -race; -short cuts the seed count so
// the pre-commit loop stays fast.
func TestChaosSoak(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	policies := []struct {
		name string
		make func() sim.Policy
	}{
		{"FCFS-backfill", func() sim.Policy { return schedsearch.FCFSBackfill() }},
		{"LXF-backfill", func() sim.Policy { return schedsearch.LXFBackfill() }},
		{"DDS-lxf-dynB", func() sim.Policy {
			return schedsearch.NewSearchScheduler(schedsearch.DDS, schedsearch.HeuristicLXF,
				schedsearch.DynamicBound(), 100)
		}},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				res, err := chaos.Run(chaos.Config{
					Seed:   seed,
					Faults: chaos.AllFaults,
					Policy: pol.make,
					Jobs:   100,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (reproduce: chaos.Run with this seed and AllFaults)", seed, err)
				}
				if len(res.Records) == 0 {
					t.Fatalf("seed %d: no jobs completed", seed)
				}
				t.Logf("seed %d: %d completed, %d rejected, %d panics recovered, rebuilt=%v",
					seed, len(res.Records), res.Rejected, res.Panics, res.Rebuilt)
			}
		})
	}
}
